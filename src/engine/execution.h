#ifndef WLM_ENGINE_EXECUTION_H_
#define WLM_ENGINE_EXECUTION_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/plan.h"
#include "engine/types.h"

namespace wlm {

/// Relative resource-access weights of a running query; the execution-control
/// techniques (priority aging, policy-driven reallocation) act by changing
/// these.
struct ResourceShares {
  double cpu_weight = 1.0;
  double io_weight = 1.0;
};

/// How to save a query's state at suspension (Chandramouli et al. [10]):
/// DumpState writes the current operator state (expensive suspend, cheap
/// resume); GoBack writes only control state and redoes work from the last
/// checkpoint at resume (cheap suspend, potentially expensive resume).
enum class SuspendStrategy { kDumpState, kGoBack };

const char* SuspendStrategyToString(SuspendStrategy s);

/// Everything needed to resume a suspended query later.
struct SuspendedQuery {
  QuerySpec spec;
  /// Remaining work per operator, rollback (GoBack redo) already applied.
  std::vector<PlanOperator> remaining_ops;
  SuspendStrategy strategy = SuspendStrategy::kDumpState;
  double saved_state_mb = 0.0;
  /// I/O paid while suspending (state flush).
  double suspend_io_cost = 0.0;
  /// I/O to pay at resume (state reload).
  double resume_io_cost = 0.0;
  /// Work redone at resume because of GoBack rollback.
  double redo_cpu = 0.0;
  double redo_io = 0.0;
  double suspended_at = 0.0;
  double progress_at_suspend = 0.0;
  /// CPU/IO already consumed before suspension (carried into accounting).
  double cpu_used_before = 0.0;
  double io_used_before = 0.0;
};

/// Per-dispatch options.
struct ExecutionContext {
  ResourceShares shares;
  /// Free-form label (typically the service-class / workload name); the
  /// monitor aggregates per tag.
  std::string tag;
  /// Fired exactly once when the execution leaves the engine.
  std::function<void(const QueryOutcome&)> on_finish;
};

/// Introspection snapshot of one running execution; progress indicators and
/// execution controllers consume this.
struct ExecutionProgress {
  QueryId id = 0;
  std::string tag;
  QueryKind kind = QueryKind::kBiQuery;
  double dispatch_time = 0.0;
  double elapsed = 0.0;
  /// Work-weighted completion fraction in [0, 1].
  double fraction_done = 0.0;
  double cpu_used = 0.0;
  double io_used = 0.0;
  double remaining_cpu = 0.0;
  double remaining_io = 0.0;
  int current_op = 0;
  int num_ops = 0;
  bool blocked_on_locks = false;
  bool sleeping = false;
  bool suspending = false;
  /// Rows produced so far (fraction * true result rows) — the
  /// "rows returned" thresholds in DB2-style controls watch this.
  int64_t rows_emitted = 0;
  double duty = 1.0;
  ResourceShares shares;
  /// Provisional phase decomposition as of the snapshot: settled totals
  /// plus the open interval attributed by the current state. Sums to
  /// `elapsed` up to float rounding.
  ExecPhaseTotals phases;
};

/// State machine for one query running in the engine. Owned by
/// DatabaseEngine; exposed for unit testing of the advance mechanics.
class QueryExecution {
 public:
  enum class State {
    kAcquiringLocks,
    kRunning,
    kSleeping,    // interrupt-throttle pause
    kSuspending,  // flushing state to disk before suspension
    kFinished,
  };

  /// `io_ops_per_second` is the engine's nominal device rate, used for
  /// work-normalization in progress fractions.
  QueryExecution(QuerySpec spec, Plan plan, ExecutionContext ctx,
                 double dispatch_time, double io_ops_per_second);

  const QuerySpec& spec() const { return spec_; }
  const Plan& plan() const { return plan_; }
  const ExecutionContext& context() const { return ctx_; }
  State state() const { return state_; }
  double dispatch_time() const { return dispatch_time_; }

  // --- lock acquisition phase -------------------------------------------
  /// Index of the next lock to request; == spec().locks.size() when done.
  size_t lock_cursor() const { return lock_cursor_; }
  void AdvanceLockCursor() { ++lock_cursor_; }
  [[nodiscard]] bool AllLocksAcquired() const { return lock_cursor_ >= spec_.locks.size(); }
  void StartRunning(double now, double spill_factor, double buffer_hit_ratio,
                    double granted_mb);
  double lock_wait_seconds(double now) const;

  // --- resource consumption ---------------------------------------------
  /// Max CPU-seconds this execution can absorb in a tick of length `dt`.
  double CpuDemand(double dt) const;
  /// Max I/O ops this execution can absorb in `dt` given device rate.
  double IoDemand(double dt, double device_rate) const;
  /// Applies granted work; returns true if all operators completed (or the
  /// suspend flush finished when suspending).
  [[nodiscard]] bool Advance(double cpu_grant, double io_grant);

  // --- throttling ---------------------------------------------------------
  double duty() const { return duty_; }
  void set_duty(double duty);
  /// Interrupt throttle: no work until `until`.
  void SleepUntil(double until);
  [[nodiscard]] bool IsSleeping(double now) const;
  /// Called by the engine each tick to wake from an elapsed pause.
  void MaybeWake(double now);

  // --- shares --------------------------------------------------------------
  const ResourceShares& shares() const { return ctx_.shares; }
  void set_shares(const ResourceShares& s) { ctx_.shares = s; }

  // --- suspension -----------------------------------------------------------
  /// Transitions to kSuspending, replacing remaining work with the state
  /// flush; fills `out` with the resume bundle (remaining work snapshot).
  /// `io_ops_per_mb` prices the state write/read.
  [[nodiscard]] Status BeginSuspend(SuspendStrategy strategy, double now,
                      double io_ops_per_mb, SuspendedQuery* out);

  // --- phase accounting ------------------------------------------------------
  /// Closes the open interval [last settle, now], attributing it to
  /// exactly one phase bucket by the *current* state (so transitions must
  /// settle before flipping state). `cpu_delta` is the CPU consumed since
  /// the last settle (from Advance); pass 0 at event-time settles.
  void SettlePhases(double now, double cpu_delta);
  /// Settled phase totals (as of the last SettlePhases call).
  const ExecPhaseTotals& phases() const { return phases_; }
  /// Settled totals plus the still-open interval, for live snapshots;
  /// PhasesAt(now).Sum() == now - dispatch_time() up to float rounding.
  ExecPhaseTotals PhasesAt(double now) const;

  // --- accounting / introspection -------------------------------------------
  double cpu_used() const { return cpu_used_; }
  double io_used() const { return io_used_; }
  double spill_factor() const { return spill_factor_; }
  double buffer_hit_ratio() const { return buffer_hit_ratio_; }
  double granted_mb() const { return granted_mb_; }
  double FractionDone() const;
  double RemainingCpu() const;
  double RemainingIo() const;
  /// Current operator's in-memory state size (progress-scaled), MB.
  double CurrentStateMb() const;
  ExecutionProgress Snapshot(double now) const;
  void MarkFinished() { state_ = State::kFinished; }

 private:
  struct OpState {
    PlanOperator op;        // original (possibly spill-inflated) work
    double remaining_cpu;
    double remaining_io;
  };

  QuerySpec spec_;
  Plan plan_;
  ExecutionContext ctx_;
  double dispatch_time_;
  double io_rate_;  // engine nominal io ops/sec for work normalization

  State state_ = State::kAcquiringLocks;
  size_t lock_cursor_ = 0;
  double lock_phase_start_;
  double lock_wait_total_ = 0.0;

  std::vector<OpState> ops_;
  size_t op_index_ = 0;
  double total_work_;  // for fraction_done

  double spill_factor_ = 1.0;
  double buffer_hit_ratio_ = 0.0;
  double granted_mb_ = 0.0;
  double cpu_used_ = 0.0;
  double io_used_ = 0.0;
  double duty_ = 1.0;
  double sleeping_until_ = -1.0;

  ExecPhaseTotals phases_;
  double last_account_time_;       // start of the open phase interval
  double spill_io_fraction_ = 0.0; // share of device I/O caused by spilling
};

}  // namespace wlm

#endif  // WLM_ENGINE_EXECUTION_H_
