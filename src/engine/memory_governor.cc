#include "engine/memory_governor.h"

#include <algorithm>
#include <cassert>

namespace wlm {

MemoryGovernor::MemoryGovernor(double total_mb, double spill_penalty)
    : total_mb_(total_mb), spill_penalty_(spill_penalty) {
  assert(total_mb_ >= 0.0);
  assert(spill_penalty_ >= 0.0);
}

void MemoryGovernor::SetPressureMb(double mb) {
  pressure_mb_ = std::max(0.0, mb);
}

void MemoryGovernor::SetGroupQuota(const std::string& group,
                                   MemoryQuota quota) {
  quotas_[group] = quota;
}

void MemoryGovernor::SetGroupAlias(const std::string& tag,
                                   const std::string& group) {
  aliases_[tag] = group;
}

const std::string& MemoryGovernor::GroupFor(const std::string& tag) const {
  auto it = aliases_.find(tag);
  return it == aliases_.end() ? tag : it->second;
}

double MemoryGovernor::GroupUsed(const std::string& group) const {
  auto it = group_used_.find(group);
  return it == group_used_.end() ? 0.0 : it->second;
}

double MemoryGovernor::AvailableFor(const std::string& group) const {
  // Other groups' unfilled MIN reservations are off-limits.
  double reserved_elsewhere = 0.0;
  for (const auto& [other, quota] : quotas_) {
    if (other == group) continue;
    reserved_elsewhere += std::max(0.0, quota.min_mb - GroupUsed(other));
  }
  double available =
      std::max(0.0, free_mb() - pressure_mb_ - reserved_elsewhere);
  auto quota = quotas_.find(group);
  if (quota != quotas_.end()) {
    double headroom =
        std::max(0.0, quota->second.max_mb - GroupUsed(group));
    available = std::min(available, headroom);
  }
  return available;
}

MemoryGrant MemoryGovernor::Grant(const std::string& tag,
                                  double requested_mb) {
  MemoryGrant grant;
  if (requested_mb <= 0.0) return grant;
  const std::string& group = GroupFor(tag);
  grant.granted_mb =
      std::clamp(requested_mb, 0.0, AvailableFor(group));
  used_mb_ += grant.granted_mb;
  peak_used_mb_ = std::max(peak_used_mb_, used_mb_);
  group_used_[group] += grant.granted_mb;
  double shortfall = 1.0 - grant.granted_mb / requested_mb;
  grant.spill_factor = 1.0 + spill_penalty_ * shortfall;
  ++grants_issued_;
  if (shortfall > 1e-12) ++short_grants_;
  return grant;
}

void MemoryGovernor::Release(const std::string& tag, double granted_mb) {
  used_mb_ = std::max(0.0, used_mb_ - granted_mb);
  const std::string& group = GroupFor(tag);
  auto it = group_used_.find(group);
  if (it != group_used_.end()) {
    it->second = std::max(0.0, it->second - granted_mb);
    if (it->second <= 0.0) group_used_.erase(it);
  }
}

}  // namespace wlm
