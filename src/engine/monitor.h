#ifndef WLM_ENGINE_MONITOR_H_
#define WLM_ENGINE_MONITOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/time_series.h"
#include "engine/engine.h"
#include "sim/simulation.h"

namespace wlm {

/// Point-in-time system health snapshot: the "monitor metrics" / performance
/// indicators the indicator-based admission controller [79][80] thresholds
/// on, and the inputs of every feedback controller.
struct SystemIndicators {
  double time = 0.0;
  double cpu_utilization = 0.0;
  double io_utilization = 0.0;
  double memory_utilization = 0.0;
  double conflict_ratio = 1.0;
  int running_queries = 0;
  int blocked_queries = 0;
  /// Completions per second over the last monitor interval (all tags).
  double throughput = 0.0;
};

/// Per-tag completion statistics.
struct TagStats {
  int64_t completed = 0;
  int64_t killed = 0;
  int64_t aborted = 0;
  Percentiles response_times;
  Percentiles velocities;
  /// Completions within the current monitor interval (reset each sample).
  int64_t interval_completed = 0;
  double last_interval_throughput = 0.0;
  /// Smoothed recent behaviour — what the feedback controllers steer on.
  Ewma recent_response{0.25};
  Ewma recent_velocity{0.25};
};

/// Samples the engine every `interval` simulated seconds and accumulates
/// per-workload ("tag") completion statistics. This is the Monitor of the
/// paper's MAPE loop and the data source for the DB2-style monitoring
/// stage; all workload-management controllers read the system through it.
class Monitor {
 public:
  Monitor(Simulation* sim, DatabaseEngine* engine, double interval = 1.0);
  ~Monitor();
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  void Start();
  void Stop();
  double interval() const { return interval_; }

  /// Records a finished request: `response_seconds` is arrival-to-finish
  /// (queue wait included) and `velocity` is the paper's execution-velocity
  /// metric (expected standalone time / actual time, in (0, 1]).
  void RecordCompletion(const std::string& tag, double response_seconds,
                        double velocity, OutcomeKind kind);

  /// Most recent indicator sample (also recomputed on demand).
  SystemIndicators indicators() const;

  /// Per-tag statistics; creates an empty entry when absent.
  TagStats& tag_stats(const std::string& tag);
  const std::map<std::string, TagStats>& all_tag_stats() const {
    return tags_;
  }

  /// Named time series recorded at each sample: "cpu_util", "io_util",
  /// "mem_util", "conflict_ratio", "running", "throughput", and
  /// "throughput:<tag>" per tag.
  const TimeSeries* FindSeries(const std::string& name) const;
  TimeSeries& series(const std::string& name);
  /// Every recorded series, keyed by name (exporters iterate this).
  const std::map<std::string, TimeSeries>& all_series() const {
    return series_;
  }

  /// Observer invoked at each sampling instant (controllers subscribe
  /// here). Observers run after the series are updated.
  void AddSampleListener(std::function<void(const SystemIndicators&)> fn);

 private:
  void Sample();

  Simulation* sim_;
  DatabaseEngine* engine_;
  double interval_;
  PeriodicTask task_;
  std::map<std::string, TagStats> tags_;
  std::map<std::string, TimeSeries> series_;
  std::vector<std::function<void(const SystemIndicators&)>> listeners_;
  int64_t completions_since_sample_ = 0;
  SystemIndicators last_;
};

}  // namespace wlm

#endif  // WLM_ENGINE_MONITOR_H_
