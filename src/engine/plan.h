#ifndef WLM_ENGINE_PLAN_H_
#define WLM_ENGINE_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/types.h"

namespace wlm {

/// Physical operator types in execution plans. The executor runs operators
/// sequentially in pipeline order; suspend/resume, progress estimation and
/// query restructuring all act at operator granularity.
enum class OperatorType {
  kTableScan,
  kIndexScan,
  kFilter,
  kHashJoin,
  kSort,
  kAggregate,
  kInsert,
  kUpdate,
  kUtilityOp,  // backup/reorg/statistics work
};

const char* OperatorTypeToString(OperatorType type);

/// One operator's work, state-size, and checkpoint behaviour.
struct PlanOperator {
  OperatorType type = OperatorType::kTableScan;
  /// CPU service demand of this operator, CPU-seconds.
  double cpu_seconds = 0.0;
  /// I/O demand, operations.
  double io_ops = 0.0;
  /// Peak in-memory state (hash table, sort runs), MB. Grows linearly with
  /// operator progress; DumpState suspension writes the *current* state.
  double max_state_mb = 0.0;
  /// Asynchronous checkpoint granularity: a checkpoint exists at every
  /// multiple of this progress fraction (Chandramouli et al.'s
  /// per-operator asynchronous checkpointing). 1.0 = only at op start.
  double checkpoint_fraction = 1.0;
  /// Estimated output rows (optimizer view).
  int64_t est_rows = 0;
};

/// A physical plan: operators in execution order plus the optimizer's
/// pre-execution estimates for the whole query.
struct Plan {
  QueryId query_id = 0;
  std::vector<PlanOperator> operators;

  /// Optimizer estimates (subject to estimation error).
  double est_cpu_seconds = 0.0;
  double est_io_ops = 0.0;
  double est_memory_mb = 0.0;
  int64_t est_rows = 0;
  /// Combined abstract cost unit (DB2-style "timerons"):
  /// weighted CPU + I/O.
  double est_timerons = 0.0;
  /// Estimated elapsed seconds if the query ran alone on the configured
  /// engine (the query-governor-style execution-time estimate).
  double est_elapsed_seconds = 0.0;

  double TotalCpu() const;
  double TotalIo() const;
  /// Total abstract work units (for progress fractions): cpu-seconds plus
  /// io normalized by a nominal device rate.
  double TotalWork(double io_ops_per_second) const;
  /// True elapsed seconds if this plan ran alone (sequential pipeline,
  /// cpu/io overlapped within an operator). The velocity metric's
  /// "expected execution time in steady state".
  double StandaloneSeconds(int dop, double io_ops_per_second) const;
};

}  // namespace wlm

#endif  // WLM_ENGINE_PLAN_H_
