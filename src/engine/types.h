#ifndef WLM_ENGINE_TYPES_H_
#define WLM_ENGINE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace wlm {

using QueryId = uint64_t;
using TxnId = uint64_t;
using LockKey = uint64_t;

/// Broad workload-type of a request; the paper's OLTP-vs-BI dichotomy plus
/// online administrative utilities (Parekh et al. [64]).
enum class QueryKind {
  kOltpTransaction,
  kBiQuery,
  kUtility,
};

const char* QueryKindToString(QueryKind kind);

/// Statement types used by workload definition / work classes
/// (DB2's READ / WRITE / DML / DDL / LOAD / CALL classification).
enum class StatementType {
  kRead,
  kWrite,
  kDml,
  kDdl,
  kLoad,
  kCall,
};

const char* StatementTypeToString(StatementType type);

/// Connection / session attributes: the "who" of a request ("origin" in the
/// paper's workload-definition discussion). Commercial facilities map
/// requests to workloads by these attributes.
struct SessionAttributes {
  std::string application;
  std::string user;
  std::string client_ip;
  uint64_t session_id = 0;
};

/// One lock a transaction will take, in acquisition order.
struct LockRequest {
  LockKey key = 0;
  bool exclusive = false;
};

/// The ground-truth description of one request's work. `cpu_seconds`,
/// `io_ops` and `memory_mb` are the *true* demands known to the generator;
/// the optimizer produces (noisy) estimates of them.
struct QuerySpec {
  QueryId id = 0;
  QueryKind kind = QueryKind::kBiQuery;
  StatementType stmt = StatementType::kRead;

  /// True total CPU service demand, in CPU-seconds.
  double cpu_seconds = 0.1;
  /// True total disk I/O demand, in I/O operations.
  double io_ops = 10.0;
  /// Working memory needed to run without spilling, in MB.
  double memory_mb = 16.0;
  /// True number of rows the query returns.
  int64_t result_rows = 1;
  /// Degree of parallelism: the max CPU rate the query can consume
  /// (in CPUs).
  int dop = 1;

  /// Locks acquired (strict two-phase) before the work begins.
  std::vector<LockRequest> locks;

  SessionAttributes session;
  /// Synthetic statement fingerprint; prediction-based techniques use it as
  /// a categorical feature.
  std::string sql_digest;
  /// Relative completion deadline (seconds after arrival) the submitter
  /// attaches to the request; 0 = none. The workload manager turns it
  /// into an absolute Request::deadline for overload protection.
  double deadline_seconds = 0.0;
  /// Cluster journey id assigned by the dispatcher at arrival and carried
  /// through every life (failover, redispatch, crash drain, hedge); 0
  /// outside a cluster. Observability-only: no control decision reads it.
  uint64_t journey = 0;
};

/// How a running query terminated.
enum class OutcomeKind {
  kCompleted,
  kKilled,            // killed by an execution-control action
  kAbortedDeadlock,   // chosen as a deadlock victim
  kSuspended,         // suspend finished; query can be resumed later
};

const char* OutcomeKindToString(OutcomeKind kind);

/// Mutually exclusive decomposition of an execution's in-engine wall time.
/// Every settled interval of [dispatch, finish] lands in exactly one bucket,
/// so `Sum()` equals `finish_time - dispatch_time` up to float rounding —
/// the conservation invariant the telemetry profile tests enforce.
struct ExecPhaseTotals {
  /// Blocked in the lock manager before the work began (or as a deadlock
  /// victim).
  double lock_wait_seconds = 0.0;
  /// Actively consuming CPU (granted CPU spread over the query's lanes).
  double cpu_run_seconds = 0.0;
  /// Running but waiting on the device (or starved of a grant).
  double io_stall_seconds = 0.0;
  /// The slice of I/O stall caused by spill inflation from a short memory
  /// grant — pressure the memory governor imposed, not intrinsic I/O.
  double memory_stall_seconds = 0.0;
  /// Duty-cycle sleep slices plus interrupt-throttle pauses.
  double throttled_seconds = 0.0;
  /// Flushing state to disk after a suspend request.
  double suspend_flush_seconds = 0.0;

  double Sum() const {
    return lock_wait_seconds + cpu_run_seconds + io_stall_seconds +
           memory_stall_seconds + throttled_seconds + suspend_flush_seconds;
  }
  void Accumulate(const ExecPhaseTotals& other) {
    lock_wait_seconds += other.lock_wait_seconds;
    cpu_run_seconds += other.cpu_run_seconds;
    io_stall_seconds += other.io_stall_seconds;
    memory_stall_seconds += other.memory_stall_seconds;
    throttled_seconds += other.throttled_seconds;
    suspend_flush_seconds += other.suspend_flush_seconds;
  }
};

/// Delivered to the completion callback when an execution leaves the engine.
struct QueryOutcome {
  QueryId id = 0;
  OutcomeKind kind = OutcomeKind::kCompleted;
  double dispatch_time = 0.0;
  double finish_time = 0.0;
  double cpu_used = 0.0;
  double io_used = 0.0;
  double memory_granted_mb = 0.0;
  /// io inflation factor the memory governor imposed (1.0 = no spill).
  double spill_factor = 1.0;
  /// Buffer-pool hit ratio granted at start (0 when the pool is
  /// disabled); hits shrink the effective device I/O.
  double buffer_hit_ratio = 0.0;
  /// Seconds spent waiting on locks before running.
  double lock_wait_seconds = 0.0;
  /// Sum over held locks of (release - grant) seconds at finish; strict
  /// 2PL releases everything at once, so this is the lock-hold footprint
  /// the query imposed on others.
  double lock_hold_seconds = 0.0;
  /// Wall-time decomposition of [dispatch_time, finish_time];
  /// phases.Sum() equals the wall time up to float rounding.
  ExecPhaseTotals phases;
};

}  // namespace wlm

#endif  // WLM_ENGINE_TYPES_H_
