#include "engine/execution.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wlm {

const char* SuspendStrategyToString(SuspendStrategy s) {
  switch (s) {
    case SuspendStrategy::kDumpState:
      return "DumpState";
    case SuspendStrategy::kGoBack:
      return "GoBack";
  }
  return "?";
}

QueryExecution::QueryExecution(QuerySpec spec, Plan plan, ExecutionContext ctx,
                               double dispatch_time, double io_ops_per_second)
    : spec_(std::move(spec)),
      plan_(std::move(plan)),
      ctx_(std::move(ctx)),
      dispatch_time_(dispatch_time),
      io_rate_(io_ops_per_second),
      lock_phase_start_(dispatch_time),
      last_account_time_(dispatch_time) {
  assert(io_rate_ > 0.0);
  ops_.reserve(plan_.operators.size());
  for (const PlanOperator& op : plan_.operators) {
    ops_.push_back(OpState{op, op.cpu_seconds, op.io_ops});
  }
  total_work_ = plan_.TotalWork(io_rate_);
  if (spec_.locks.empty()) {
    // No lock phase; the engine still calls StartRunning after the (empty)
    // acquisition loop.
  }
}

void QueryExecution::StartRunning(double now, double spill_factor,
                                  double buffer_hit_ratio,
                                  double granted_mb) {
  assert(state_ == State::kAcquiringLocks);
  SettlePhases(now, 0.0);  // close the lock-wait interval
  lock_wait_total_ = now - lock_phase_start_;
  spill_factor_ = std::max(1.0, spill_factor);
  spill_io_fraction_ = (spill_factor_ - 1.0) / spill_factor_;
  buffer_hit_ratio_ = std::clamp(buffer_hit_ratio, 0.0, 0.99);
  granted_mb_ = granted_mb;
  // Spilling inflates the device I/O; buffer-pool hits avoid it.
  double io_factor = spill_factor_ * (1.0 - buffer_hit_ratio_);
  if (io_factor != 1.0) {
    for (OpState& op : ops_) {
      op.op.io_ops *= io_factor;
      op.remaining_io *= io_factor;
    }
  }
  total_work_ = 0.0;
  for (const OpState& op : ops_) {
    total_work_ += op.op.cpu_seconds + op.op.io_ops / io_rate_;
  }
  state_ = State::kRunning;
}

double QueryExecution::lock_wait_seconds(double now) const {
  if (state_ == State::kAcquiringLocks) return now - lock_phase_start_;
  return lock_wait_total_;
}

double QueryExecution::CpuDemand(double dt) const {
  if (state_ != State::kRunning && state_ != State::kSuspending) return 0.0;
  double cap = static_cast<double>(std::max(1, spec_.dop)) * dt * duty_;
  return std::min(cap, RemainingCpu());
}

double QueryExecution::IoDemand(double dt, double device_rate) const {
  if (state_ != State::kRunning && state_ != State::kSuspending) return 0.0;
  double cap = device_rate * dt * duty_;
  return std::min(cap, RemainingIo());
}

bool QueryExecution::Advance(double cpu_grant, double io_grant) {
  if (state_ != State::kRunning && state_ != State::kSuspending) return false;
  double cpu_left = cpu_grant;
  double io_left = io_grant;
  while (op_index_ < ops_.size()) {
    OpState& op = ops_[op_index_];
    double use_cpu = std::min(cpu_left, op.remaining_cpu);
    op.remaining_cpu -= use_cpu;
    cpu_left -= use_cpu;
    cpu_used_ += use_cpu;

    double use_io = std::min(io_left, op.remaining_io);
    op.remaining_io -= use_io;
    io_left -= use_io;
    io_used_ += use_io;

    if (op.remaining_cpu > 1e-12 || op.remaining_io > 1e-9) {
      break;  // current operator still has work; grants exhausted for it
    }
    op.remaining_cpu = 0.0;
    op.remaining_io = 0.0;
    ++op_index_;
  }
  return op_index_ >= ops_.size();
}

void QueryExecution::set_duty(double duty) {
  duty_ = std::clamp(duty, 0.0, 1.0);
}

void QueryExecution::SleepUntil(double until) {
  if (state_ == State::kRunning) {
    state_ = State::kSleeping;
    sleeping_until_ = until;
  }
}

bool QueryExecution::IsSleeping(double now) const {
  return state_ == State::kSleeping && now < sleeping_until_;
}

void QueryExecution::MaybeWake(double now) {
  if (state_ == State::kSleeping && now >= sleeping_until_) {
    SettlePhases(now, 0.0);  // close the pause interval before waking
    state_ = State::kRunning;
    sleeping_until_ = -1.0;
  }
}

void QueryExecution::SettlePhases(double now, double cpu_delta) {
  double dt = now - last_account_time_;
  last_account_time_ = now;
  if (dt <= 0.0) return;
  switch (state_) {
    case State::kAcquiringLocks:
      phases_.lock_wait_seconds += dt;
      return;
    case State::kSleeping:
      phases_.throttled_seconds += dt;
      return;
    case State::kSuspending:
      phases_.suspend_flush_seconds += dt;
      return;
    case State::kFinished:  // terminal settles happen before MarkFinished
      phases_.cpu_run_seconds += dt;
      return;
    case State::kRunning:
      break;
  }
  // The (1 - duty) slice of a duty-cycled interval is self-imposed sleep
  // no matter what the active slice did.
  double active = dt * duty_;
  phases_.throttled_seconds += dt - active;
  // On-CPU time is the granted CPU spread over the query's parallel
  // lanes; the rest of the active slice the query waited on the device
  // (or was starved of a grant). Spill-inflated I/O makes the governor's
  // short memory grant responsible for its share of that stall.
  double cpu_time = std::min(
      active, cpu_delta / static_cast<double>(std::max(1, spec_.dop)));
  double stall = active - cpu_time;
  double memory_stall = stall * spill_io_fraction_;
  phases_.cpu_run_seconds += cpu_time;
  phases_.memory_stall_seconds += memory_stall;
  phases_.io_stall_seconds += stall - memory_stall;
}

ExecPhaseTotals QueryExecution::PhasesAt(double now) const {
  ExecPhaseTotals out = phases_;
  double dt = now - last_account_time_;
  if (dt <= 0.0) return out;
  switch (state_) {
    case State::kAcquiringLocks:
      out.lock_wait_seconds += dt;
      break;
    case State::kSleeping:
      out.throttled_seconds += dt;
      break;
    case State::kSuspending:
      out.suspend_flush_seconds += dt;
      break;
    case State::kRunning:
    case State::kFinished:
      // Provisional: the grant for the open interval is unknown until the
      // next tick settles it, so show it as active time.
      out.throttled_seconds += dt * (1.0 - duty_);
      out.cpu_run_seconds += dt * duty_;
      break;
  }
  return out;
}

double QueryExecution::FractionDone() const {
  if (state_ == State::kSuspending) return 1.0;  // flush is its own work
  if (total_work_ <= 0.0) return 1.0;
  double remaining = 0.0;
  for (size_t i = op_index_; i < ops_.size(); ++i) {
    remaining += ops_[i].remaining_cpu + ops_[i].remaining_io / io_rate_;
  }
  return std::clamp(1.0 - remaining / total_work_, 0.0, 1.0);
}

double QueryExecution::RemainingCpu() const {
  double total = 0.0;
  for (size_t i = op_index_; i < ops_.size(); ++i) {
    total += ops_[i].remaining_cpu;
  }
  return total;
}

double QueryExecution::RemainingIo() const {
  double total = 0.0;
  for (size_t i = op_index_; i < ops_.size(); ++i) {
    total += ops_[i].remaining_io;
  }
  return total;
}

namespace {

// Work-normalized progress of one operator in [0, 1].
double OpProgress(const PlanOperator& op, double remaining_cpu,
                  double remaining_io, double io_rate) {
  double total = op.cpu_seconds + op.io_ops / io_rate;
  if (total <= 0.0) return 1.0;
  double remaining = remaining_cpu + remaining_io / io_rate;
  return std::clamp(1.0 - remaining / total, 0.0, 1.0);
}

// Last asynchronous checkpoint at or before `progress`.
double LastCheckpointAt(double progress, double checkpoint_fraction) {
  if (checkpoint_fraction <= 0.0) return progress;  // continuous checkpoints
  if (checkpoint_fraction >= 1.0) return 0.0;       // only at operator start
  return std::floor(progress / checkpoint_fraction) * checkpoint_fraction;
}

}  // namespace

double QueryExecution::CurrentStateMb() const {
  if (op_index_ >= ops_.size()) return 0.0;
  const OpState& op = ops_[op_index_];
  double p = OpProgress(op.op, op.remaining_cpu, op.remaining_io, io_rate_);
  return op.op.max_state_mb * p;
}

Status QueryExecution::BeginSuspend(SuspendStrategy strategy, double now,
                                    double io_ops_per_mb,
                                    SuspendedQuery* out) {
  if (state_ == State::kFinished) {
    return Status::FailedPrecondition("execution already finished");
  }
  if (state_ == State::kSuspending) {
    return Status::AlreadyExists("suspend already in progress");
  }
  SettlePhases(now, 0.0);  // close the pre-suspend interval in its state

  out->spec = spec_;
  out->strategy = strategy;
  out->suspended_at = now;
  out->progress_at_suspend = FractionDone();
  out->cpu_used_before = cpu_used_;
  out->io_used_before = io_used_;
  out->remaining_ops.clear();
  out->redo_cpu = 0.0;
  out->redo_io = 0.0;

  // Control-state overhead every strategy pays (plan state, cursors).
  constexpr double kControlStateMb = 0.5;
  double state_mb = kControlStateMb;

  for (size_t i = op_index_; i < ops_.size(); ++i) {
    const OpState& st = ops_[i];
    PlanOperator remaining = st.op;  // copy type/state/checkpoint metadata
    double rem_cpu = st.remaining_cpu;
    double rem_io = st.remaining_io;
    // A sleeping (interrupt-throttled) query has in-flight operator state
    // exactly like a running one.
    if (i == op_index_ &&
        (state_ == State::kRunning || state_ == State::kSleeping)) {
      double p = OpProgress(st.op, rem_cpu, rem_io, io_rate_);
      if (strategy == SuspendStrategy::kDumpState) {
        // Persist the operator's in-memory state; resume continues exactly
        // here.
        state_mb += st.op.max_state_mb * p;
      } else {
        // GoBack: roll the operator back to its last checkpoint and redo
        // the difference at resume. CPU and I/O drain at independent
        // rates within an operator, so each dimension rolls back
        // separately — and never *forward*: a dimension still behind the
        // checkpoint keeps its true remaining work (nothing is skipped).
        double c = LastCheckpointAt(p, st.op.checkpoint_fraction);
        double target_cpu = (1.0 - c) * st.op.cpu_seconds;
        double target_io = (1.0 - c) * st.op.io_ops;
        double new_rem_cpu = std::max(rem_cpu, target_cpu);
        double new_rem_io = std::max(rem_io, target_io);
        out->redo_cpu += new_rem_cpu - rem_cpu;
        out->redo_io += new_rem_io - rem_io;
        rem_cpu = new_rem_cpu;
        rem_io = new_rem_io;
        // Persist only state up to the checkpoint that already lives on
        // disk (async checkpointing wrote it); nothing extra to flush.
      }
    }
    // De-inflate spill/buffer effects: the resume re-requests memory and
    // buffer share and re-applies whatever factors it is granted then.
    double io_factor = spill_factor_ * (1.0 - buffer_hit_ratio_);
    remaining.cpu_seconds = rem_cpu;
    remaining.io_ops = rem_io / io_factor;
    out->remaining_ops.push_back(remaining);
  }

  out->saved_state_mb = state_mb;
  out->suspend_io_cost = state_mb * io_ops_per_mb;
  out->resume_io_cost = state_mb * io_ops_per_mb;
  out->redo_io /= spill_factor_ * (1.0 - buffer_hit_ratio_);

  // Replace remaining work with the state flush; once it drains the engine
  // finalizes the suspension.
  PlanOperator flush;
  flush.type = OperatorType::kUtilityOp;
  flush.cpu_seconds = 0.0;
  flush.io_ops = out->suspend_io_cost;
  flush.max_state_mb = 0.0;
  flush.checkpoint_fraction = 1.0;
  ops_.clear();
  ops_.push_back(OpState{flush, flush.cpu_seconds, flush.io_ops});
  op_index_ = 0;
  sleeping_until_ = -1.0;
  duty_ = 1.0;  // the flush is not subject to throttling
  state_ = State::kSuspending;
  return Status::OK();
}

ExecutionProgress QueryExecution::Snapshot(double now) const {
  ExecutionProgress p;
  p.id = spec_.id;
  p.tag = ctx_.tag;
  p.kind = spec_.kind;
  p.dispatch_time = dispatch_time_;
  p.elapsed = now - dispatch_time_;
  p.fraction_done = FractionDone();
  p.cpu_used = cpu_used_;
  p.io_used = io_used_;
  p.remaining_cpu = RemainingCpu();
  p.remaining_io = RemainingIo();
  p.current_op = static_cast<int>(std::min(op_index_, ops_.size()));
  p.num_ops = static_cast<int>(ops_.size());
  p.blocked_on_locks = state_ == State::kAcquiringLocks;
  p.sleeping = state_ == State::kSleeping;
  p.suspending = state_ == State::kSuspending;
  p.rows_emitted = static_cast<int64_t>(
      p.fraction_done * static_cast<double>(spec_.result_rows));
  p.duty = duty_;
  p.shares = ctx_.shares;
  p.phases = PhasesAt(now);
  return p;
}

}  // namespace wlm
