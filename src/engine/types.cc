#include "engine/types.h"

namespace wlm {

const char* QueryKindToString(QueryKind kind) {
  switch (kind) {
    case QueryKind::kOltpTransaction:
      return "OLTP";
    case QueryKind::kBiQuery:
      return "BI";
    case QueryKind::kUtility:
      return "UTILITY";
  }
  return "?";
}

const char* StatementTypeToString(StatementType type) {
  switch (type) {
    case StatementType::kRead:
      return "READ";
    case StatementType::kWrite:
      return "WRITE";
    case StatementType::kDml:
      return "DML";
    case StatementType::kDdl:
      return "DDL";
    case StatementType::kLoad:
      return "LOAD";
    case StatementType::kCall:
      return "CALL";
  }
  return "?";
}

const char* OutcomeKindToString(OutcomeKind kind) {
  switch (kind) {
    case OutcomeKind::kCompleted:
      return "completed";
    case OutcomeKind::kKilled:
      return "killed";
    case OutcomeKind::kAbortedDeadlock:
      return "aborted-deadlock";
    case OutcomeKind::kSuspended:
      return "suspended";
  }
  return "?";
}

}  // namespace wlm
