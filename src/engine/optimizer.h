#ifndef WLM_ENGINE_OPTIMIZER_H_
#define WLM_ENGINE_OPTIMIZER_H_

#include "engine/plan.h"
#include "engine/types.h"

namespace wlm {

/// Cost-model knobs plus the estimation-error model. The paper repeatedly
/// leans on "query costs estimated by the database query optimizer may be
/// inaccurate" — `error_sigma` controls the lognormal multiplicative error
/// applied (deterministically per query id) to all estimates, so experiments
/// can dial misestimation from 0 (oracle) upward.
struct OptimizerConfig {
  /// Lognormal sigma of multiplicative estimation error. 0 = exact.
  double error_sigma = 0.35;
  /// Timeron cost weights (abstract cost units per CPU-second / IO op).
  double timerons_per_cpu_second = 1000.0;
  double timerons_per_io_op = 1.0;
  /// Nominal device rate used for estimating stand-alone elapsed time.
  double nominal_io_ops_per_second = 2000.0;
  /// Rows-estimate relative error sigma.
  double rows_error_sigma = 0.5;
};

/// Builds physical plans from query specs and produces pre-execution cost
/// estimates. Plans are deterministic functions of the spec (operator
/// shapes keyed off the spec id), so re-optimizing the same query yields
/// the same plan — required for suspend/resume and resubmission.
class Optimizer {
 public:
  explicit Optimizer(OptimizerConfig config = OptimizerConfig());

  const OptimizerConfig& config() const { return config_; }

  /// Builds the operator tree (flattened to execution order) for `spec`,
  /// splitting the spec's true demands across operators by query kind, and
  /// attaches estimates with the configured error model.
  Plan BuildPlan(const QuerySpec& spec) const;

  /// Re-estimates an externally constructed operator list (used by query
  /// restructuring when costing sub-plans).
  void AttachEstimates(const QuerySpec& spec, Plan* plan) const;

 private:
  OptimizerConfig config_;
};

}  // namespace wlm

#endif  // WLM_ENGINE_OPTIMIZER_H_
