#include "engine/progress.h"

#include <algorithm>

namespace wlm {
namespace {
constexpr double kNoProgressEstimate = 1e18;
}

ProgressTracker::ProgressTracker(double io_ops_per_second, size_t window)
    : io_rate_(io_ops_per_second), window_(window) {}

void ProgressTracker::Observe(const ExecutionProgress& progress, double now) {
  auto& samples = history_[progress.id];
  samples.push_back(
      Sample{now, progress.cpu_used + progress.io_used / io_rate_});
  while (samples.size() > window_) samples.pop_front();
  last_fraction_[progress.id] = progress.fraction_done;
}

void ProgressTracker::Forget(QueryId id) {
  history_.erase(id);
  last_fraction_.erase(id);
}

double ProgressTracker::EstimateRemainingSeconds(
    const ExecutionProgress& progress) const {
  double remaining_work =
      progress.remaining_cpu + progress.remaining_io / io_rate_;
  if (remaining_work <= 0.0) return 0.0;

  auto it = history_.find(progress.id);
  double speed = 0.0;
  if (it != history_.end() && it->second.size() >= 2) {
    const Sample& oldest = it->second.front();
    const Sample& newest = it->second.back();
    double dt = newest.time - oldest.time;
    if (dt > 0.0) speed = (newest.work_done - oldest.work_done) / dt;
  }
  if (speed <= 0.0 && progress.elapsed > 0.0) {
    // Lifetime average fallback.
    speed = (progress.cpu_used + progress.io_used / io_rate_) /
            progress.elapsed;
  }
  if (speed <= 0.0) return kNoProgressEstimate;
  return remaining_work / speed;
}

double ProgressTracker::LastFraction(QueryId id) const {
  auto it = last_fraction_.find(id);
  return it == last_fraction_.end() ? 0.0 : it->second;
}

}  // namespace wlm
