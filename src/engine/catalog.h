#ifndef WLM_ENGINE_CATALOG_H_
#define WLM_ENGINE_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace wlm {

/// Physical statistics of one table.
struct TableSpec {
  std::string name;
  int64_t rows = 0;
  int row_bytes = 100;
  /// Pages of `page_bytes` (computed by the catalog when added).
  int64_t pages = 0;
  bool has_primary_index = true;
};

/// Minimal system catalog: table statistics that logical workload
/// generators and cost derivation use. The simulated optimizer's cost
/// inputs (rows scanned, pages read) come from here, so query demands are
/// grounded in data sizes rather than picked per query.
class Catalog {
 public:
  static constexpr int kPageBytes = 8192;

  Catalog() = default;

  /// Adds (or replaces) a table; fills in `pages`.
  void AddTable(TableSpec spec);
  [[nodiscard]] Result<TableSpec> Lookup(const std::string& name) const;
  [[nodiscard]] bool Has(const std::string& name) const { return tables_.count(name) > 0; }
  size_t table_count() const { return tables_.size(); }
  std::vector<std::string> TableNames() const;

  /// A ready-made TPC-H-flavoured analytical schema at the given scale
  /// factor (SF 1 ~ lineitem 6M rows).
  static Catalog TpchLike(double scale_factor = 1.0);
  /// A TPC-C-flavoured transactional schema for `warehouses`.
  static Catalog TpccLike(int warehouses = 10);

 private:
  std::map<std::string, TableSpec> tables_;
};

/// Cost-derivation helpers shared by logical generators: all convert data
/// volumes into the engine's demand units.
struct CostModel {
  /// CPU seconds to process one million rows through one operator.
  double cpu_seconds_per_mrow = 0.5;
  /// Sequential scan: fraction of a table's pages actually read per unit
  /// selectivity is 1.0 (scans read everything regardless of selectivity).
  double io_ops_per_page = 1.0;
  /// Index lookup cost (B-tree descent + row fetch), I/O ops per probed
  /// row.
  double io_ops_per_index_probe = 3.0;
  /// Hash-join build memory per row on the build side.
  double join_mb_per_mrow = 24.0;
};

}  // namespace wlm

#endif  // WLM_ENGINE_CATALOG_H_
