#ifndef WLM_ENGINE_BUFFER_POOL_H_
#define WLM_ENGINE_BUFFER_POOL_H_

#include <string>
#include <unordered_map>

#include "engine/types.h"

namespace wlm {

/// Buffer-pool model with per-group page priorities — the engine surface
/// behind DB2's service-class *buffer pool priority* ("increasing the
/// buffer pool priority potentially increases the proportion of pages in
/// use by the requests in a particular service class" [30]).
///
/// Model: the pool's pages are divided across groups in proportion to
/// their priority weights (only groups with registered working sets
/// count); within a group, pages go to members in proportion to their
/// working sets. A query's hit ratio is its page share over its working
/// set, capped at `max_hit_ratio`. Hits avoid device I/O, so a better
/// ratio directly shrinks a query's effective I/O demand.
class BufferPool {
 public:
  /// `capacity_pages` <= 0 disables the pool (hit ratio 0 for everyone).
  explicit BufferPool(int64_t capacity_pages, double max_hit_ratio = 0.9);

  [[nodiscard]] bool enabled() const { return capacity_pages_ > 0; }
  int64_t capacity_pages() const { return capacity_pages_; }

  /// Relative page priority of a group (default 1.0).
  void SetGroupPriority(const std::string& tag, double weight);
  double GroupPriority(const std::string& tag) const;

  /// Registers a query's working set and returns its hit ratio under the
  /// allocation that includes it.
  double Register(QueryId id, const std::string& tag, double working_pages);
  void Unregister(QueryId id);

  /// Current hit ratio a (hypothetical or registered) member of `tag`
  /// with `working_pages` would get.
  double HitRatioFor(const std::string& tag, double working_pages) const;

  size_t registered_count() const { return members_.size(); }

  // --- attribution counters (telemetry / profiling) ------------------------
  /// Cumulative device I/O ops avoided by pool hits, by registration-time
  /// accounting: each Register contributes working_pages * hit_ratio.
  double avoided_ops() const { return avoided_ops_; }
  /// I/O ops a single group's registrations avoided so far.
  double GroupAvoidedOps(const std::string& tag) const;

 private:
  struct Member {
    std::string tag;
    double working_pages;
  };

  int64_t capacity_pages_;
  double max_hit_ratio_;
  std::unordered_map<QueryId, Member> members_;
  std::unordered_map<std::string, double> group_priority_;
  std::unordered_map<std::string, double> group_working_;  // sum of members
  std::unordered_map<std::string, double> group_avoided_;  // cumulative
  double avoided_ops_ = 0.0;
};

}  // namespace wlm

#endif  // WLM_ENGINE_BUFFER_POOL_H_
