#include "engine/plan.h"

namespace wlm {

const char* OperatorTypeToString(OperatorType type) {
  switch (type) {
    case OperatorType::kTableScan:
      return "TableScan";
    case OperatorType::kIndexScan:
      return "IndexScan";
    case OperatorType::kFilter:
      return "Filter";
    case OperatorType::kHashJoin:
      return "HashJoin";
    case OperatorType::kSort:
      return "Sort";
    case OperatorType::kAggregate:
      return "Aggregate";
    case OperatorType::kInsert:
      return "Insert";
    case OperatorType::kUpdate:
      return "Update";
    case OperatorType::kUtilityOp:
      return "UtilityOp";
  }
  return "?";
}

double Plan::TotalCpu() const {
  double total = 0.0;
  for (const PlanOperator& op : operators) total += op.cpu_seconds;
  return total;
}

double Plan::TotalIo() const {
  double total = 0.0;
  for (const PlanOperator& op : operators) total += op.io_ops;
  return total;
}

double Plan::TotalWork(double io_ops_per_second) const {
  return TotalCpu() + TotalIo() / io_ops_per_second;
}

double Plan::StandaloneSeconds(int dop, double io_ops_per_second) const {
  double elapsed = 0.0;
  double effective_dop = dop > 0 ? static_cast<double>(dop) : 1.0;
  for (const PlanOperator& op : operators) {
    double cpu_time = op.cpu_seconds / effective_dop;
    double io_time = op.io_ops / io_ops_per_second;
    elapsed += cpu_time > io_time ? cpu_time : io_time;
  }
  return elapsed;
}

}  // namespace wlm
