#include "engine/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wlm {
namespace {

constexpr double kEps = 1e-12;

/// Weighted max-min fair allocation (water-filling): distributes `capacity`
/// across users with `demands` in proportion to `weights`, never granting
/// more than demanded, re-distributing slack from saturated users.
std::vector<double> WeightedWaterFill(const std::vector<double>& demands,
                                      const std::vector<double>& weights,
                                      double capacity) {
  size_t n = demands.size();
  std::vector<double> grants(n, 0.0);
  std::vector<bool> open(n, true);
  for (size_t i = 0; i < n; ++i) {
    if (demands[i] <= kEps || weights[i] <= kEps) open[i] = false;
  }
  while (capacity > kEps) {
    double weight_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (open[i]) weight_sum += weights[i];
    }
    if (weight_sum <= kEps) break;
    bool any_saturated = false;
    // First pass: saturate users whose fair share covers their demand.
    for (size_t i = 0; i < n; ++i) {
      if (!open[i]) continue;
      double share = capacity * weights[i] / weight_sum;
      double want = demands[i] - grants[i];
      if (share >= want - kEps) {
        grants[i] += want;
        capacity -= want;
        open[i] = false;
        any_saturated = true;
      }
    }
    if (!any_saturated) {
      // Everyone is demand-unsaturated: split proportionally and finish.
      for (size_t i = 0; i < n; ++i) {
        if (!open[i]) continue;
        grants[i] += capacity * weights[i] / weight_sum;
      }
      break;
    }
  }
  return grants;
}

}  // namespace

DatabaseEngine::DatabaseEngine(Simulation* sim, EngineConfig config)
    : sim_(sim),
      config_(config),
      optimizer_(config.optimizer),
      memory_(config.memory_mb, config.spill_penalty),
      buffer_pool_(config.buffer_pool_pages),
      tick_(sim, config.tick_seconds, [this] { Tick(); }),
      deadlock_task_(sim, config.deadlock_check_period,
                     [this] { CheckDeadlocks(); }) {
  lock_manager_.set_grant_callback(
      [this](TxnId txn, LockKey key) { OnLockGranted(txn, key); });
  lock_manager_.set_time_source([this] { return sim_->Now(); });
}

DatabaseEngine::~DatabaseEngine() = default;

Status DatabaseEngine::Dispatch(const QuerySpec& spec, ExecutionContext ctx) {
  return DispatchWithPlan(spec, optimizer_.BuildPlan(spec), std::move(ctx));
}

Status DatabaseEngine::DispatchWithPlan(const QuerySpec& spec, Plan plan,
                                        ExecutionContext ctx) {
  if (active_.count(spec.id) > 0) {
    return Status::AlreadyExists("query id already executing");
  }
  auto exec = std::make_unique<QueryExecution>(
      spec, std::move(plan), std::move(ctx), sim_->Now(),
      config_.io_ops_per_second);
  QueryExecution* raw = exec.get();
  active_[spec.id].exec = std::move(exec);
  ++counters_.dispatched;
  ContinueAcquiringLocks(raw);
  EnsureTicking();
  return Status::OK();
}

void DatabaseEngine::ContinueAcquiringLocks(QueryExecution* exec) {
  const QuerySpec& spec = exec->spec();
  while (!exec->AllLocksAcquired()) {
    const LockRequest& req = spec.locks[exec->lock_cursor()];
    bool granted = lock_manager_.Acquire(
        spec.id, req.key,
        req.exclusive ? LockMode::kExclusive : LockMode::kShared);
    if (!granted) return;  // OnLockGranted resumes the loop
    exec->AdvanceLockCursor();
  }
  MemoryGrant grant = memory_.Grant(exec->context().tag, spec.memory_mb);
  // Working set ~ the pages the query will read; hits shrink device I/O.
  double hit_ratio =
      buffer_pool_.Register(spec.id, exec->context().tag, spec.io_ops);
  exec->StartRunning(sim_->Now(), grant.spill_factor, hit_ratio,
                     grant.granted_mb);
}

void DatabaseEngine::OnLockGranted(TxnId txn, LockKey key) {
  (void)key;
  auto it = active_.find(txn);
  if (it == active_.end()) return;
  QueryExecution* exec = it->second.exec.get();
  if (exec->state() != QueryExecution::State::kAcquiringLocks) return;
  exec->AdvanceLockCursor();
  ContinueAcquiringLocks(exec);
}

void DatabaseEngine::EnsureTicking() {
  if (!tick_.running()) tick_.Start();
  if (!deadlock_task_.running()) deadlock_task_.Start();
}

void DatabaseEngine::Tick() {
  const double dt = config_.tick_seconds;
  const double now = sim_->Now();

  std::vector<QueryId> ids;
  std::vector<QueryExecution*> execs;
  for (auto& [id, aq] : active_) {
    aq.exec->MaybeWake(now);
    ids.push_back(id);
    execs.push_back(aq.exec.get());
  }

  std::vector<double> cpu_demand(execs.size());
  std::vector<double> io_demand(execs.size());
  std::vector<double> cpu_weight(execs.size());
  std::vector<double> io_weight(execs.size());
  for (size_t i = 0; i < execs.size(); ++i) {
    cpu_demand[i] = execs[i]->CpuDemand(dt);
    io_demand[i] = execs[i]->IoDemand(dt, config_.io_ops_per_second);
    cpu_weight[i] = execs[i]->shares().cpu_weight;
    io_weight[i] = execs[i]->shares().io_weight;
  }

  // Two-level fair sharing: capacity is divided across *groups* first
  // (grouped tags use their group weights; an ungrouped query is its own
  // group), then within each group across its member queries.
  std::vector<std::vector<size_t>> groups;
  std::vector<double> group_cpu_weight;
  std::vector<double> group_io_weight;
  {
    std::unordered_map<std::string, size_t> tag_group;
    for (size_t i = 0; i < execs.size(); ++i) {
      const std::string& tag = execs[i]->context().tag;
      auto shares_it = group_shares_.find(tag);
      if (shares_it == group_shares_.end()) {
        groups.push_back({i});
        group_cpu_weight.push_back(cpu_weight[i]);
        group_io_weight.push_back(io_weight[i]);
        continue;
      }
      auto [group_it, inserted] = tag_group.try_emplace(tag, groups.size());
      if (inserted) {
        groups.push_back({});
        group_cpu_weight.push_back(shares_it->second.cpu_weight);
        group_io_weight.push_back(shares_it->second.io_weight);
      }
      groups[group_it->second].push_back(i);
    }
  }

  // Injected degradation shrinks delivered capacity; utilization is
  // reported against the *degraded* capacity so controllers see the
  // resulting pressure.
  double cpu_capacity =
      static_cast<double>(config_.num_cpus - cpus_offline_) * dt;
  double io_capacity = config_.io_ops_per_second * io_rate_factor_ * dt;

  auto two_level = [&](const std::vector<double>& demands,
                       const std::vector<double>& weights,
                       const std::vector<double>& group_weights,
                       double capacity) {
    std::vector<double> group_demand(groups.size(), 0.0);
    for (size_t g = 0; g < groups.size(); ++g) {
      for (size_t i : groups[g]) group_demand[g] += demands[i];
    }
    std::vector<double> group_grant =
        WeightedWaterFill(group_demand, group_weights, capacity);
    std::vector<double> grants(demands.size(), 0.0);
    for (size_t g = 0; g < groups.size(); ++g) {
      if (groups[g].size() == 1) {
        grants[groups[g][0]] = group_grant[g];
        continue;
      }
      std::vector<double> member_demand, member_weight;
      for (size_t i : groups[g]) {
        member_demand.push_back(demands[i]);
        member_weight.push_back(weights[i]);
      }
      std::vector<double> member_grant =
          WeightedWaterFill(member_demand, member_weight, group_grant[g]);
      for (size_t k = 0; k < groups[g].size(); ++k) {
        grants[groups[g][k]] = member_grant[k];
      }
    }
    return grants;
  };

  std::vector<double> cpu_grant =
      two_level(cpu_demand, cpu_weight, group_cpu_weight, cpu_capacity);
  std::vector<double> io_grant =
      two_level(io_demand, io_weight, group_io_weight, io_capacity);

  // Account *consumed* work, not grants: a pipeline-stalled query may
  // leave part of a grant unused (its CPU idles while it waits for I/O in
  // the same operator), and that slack must not count as usage.
  double cpu_used_total = 0.0;
  double io_used_total = 0.0;
  std::vector<QueryId> done;
  for (size_t i = 0; i < execs.size(); ++i) {
    double cpu_before = execs[i]->cpu_used();
    double io_before = execs[i]->io_used();
    bool finished = execs[i]->Advance(cpu_grant[i], io_grant[i]);
    double cpu_delta = execs[i]->cpu_used() - cpu_before;
    cpu_used_total += cpu_delta;
    io_used_total += execs[i]->io_used() - io_before;
    execs[i]->SettlePhases(now, cpu_delta);
    if (finished) done.push_back(ids[i]);
  }
  counters_.cpu_used_seconds += cpu_used_total;
  counters_.io_ops_done += io_used_total;
  cpu_utilization_ = cpu_capacity > 0.0 ? cpu_used_total / cpu_capacity : 0;
  io_utilization_ = io_capacity > 0.0 ? io_used_total / io_capacity : 0;
  // ~1 second smoothing horizon regardless of the tick length.
  double alpha = std::min(1.0, dt / 1.0);
  smoothed_cpu_ += alpha * (cpu_utilization_ - smoothed_cpu_);
  smoothed_io_ += alpha * (io_utilization_ - smoothed_io_);

  for (QueryId id : done) {
    auto it = active_.find(id);
    if (it == active_.end()) continue;  // a callback already removed it
    if (it->second.exec->state() == QueryExecution::State::kSuspending) {
      FinalizeSuspend(id);
    } else {
      FinishExecution(id, OutcomeKind::kCompleted);
    }
  }

  if (active_.empty()) {
    tick_.Stop();
    deadlock_task_.Stop();
    // Idle engine: report truthfully instead of leaving stale values.
    cpu_utilization_ = 0.0;
    io_utilization_ = 0.0;
  }
}

void DatabaseEngine::CheckDeadlocks() {
  std::vector<TxnId> victims = lock_manager_.FindDeadlockVictims();
  for (TxnId victim : victims) {
    if (active_.count(victim) > 0) {
      FinishExecution(victim, OutcomeKind::kAbortedDeadlock);
    }
  }
}

QueryOutcome DatabaseEngine::MakeOutcome(const QueryExecution& exec,
                                         OutcomeKind kind) const {
  QueryOutcome out;
  out.id = exec.spec().id;
  out.kind = kind;
  out.dispatch_time = exec.dispatch_time();
  out.finish_time = sim_->Now();
  out.cpu_used = exec.cpu_used();
  out.io_used = exec.io_used();
  out.memory_granted_mb = exec.granted_mb();
  out.spill_factor = exec.spill_factor();
  out.buffer_hit_ratio = exec.buffer_hit_ratio();
  out.lock_wait_seconds = exec.lock_wait_seconds(sim_->Now());
  out.phases = exec.phases();
  return out;
}

void DatabaseEngine::FinishExecution(QueryId id, OutcomeKind kind) {
  auto it = active_.find(id);
  assert(it != active_.end());
  std::unique_ptr<QueryExecution> exec = std::move(it->second.exec);
  active_.erase(it);
  pending_suspend_.erase(id);
  exec->SettlePhases(sim_->Now(), 0.0);
  double lock_hold = lock_manager_.HeldSeconds(id, sim_->Now());
  exec->MarkFinished();
  lock_manager_.ReleaseAll(id);
  memory_.Release(exec->context().tag, exec->granted_mb());
  buffer_pool_.Unregister(id);
  switch (kind) {
    case OutcomeKind::kCompleted:
      ++counters_.completed;
      break;
    case OutcomeKind::kKilled:
      ++counters_.killed;
      break;
    case OutcomeKind::kAbortedDeadlock:
      ++counters_.deadlock_aborts;
      break;
    case OutcomeKind::kSuspended:
      break;  // handled by FinalizeSuspend
  }
  QueryOutcome outcome = MakeOutcome(*exec, kind);
  outcome.lock_hold_seconds = lock_hold;
  if (exec->context().on_finish) exec->context().on_finish(outcome);
  if (observer_) observer_(outcome);
}

void DatabaseEngine::FinalizeSuspend(QueryId id) {
  auto it = active_.find(id);
  assert(it != active_.end());
  auto pending = pending_suspend_.find(id);
  assert(pending != pending_suspend_.end());
  std::unique_ptr<QueryExecution> exec = std::move(it->second.exec);
  active_.erase(it);
  SuspendedQuery bundle = std::move(pending->second);
  pending_suspend_.erase(pending);
  // Account the flush work into the bundle's "used before" totals so the
  // resumed execution's accounting is continuous.
  bundle.cpu_used_before = exec->cpu_used();
  bundle.io_used_before = exec->io_used();
  exec->SettlePhases(sim_->Now(), 0.0);
  double lock_hold = lock_manager_.HeldSeconds(id, sim_->Now());
  exec->MarkFinished();
  lock_manager_.ReleaseAll(id);
  memory_.Release(exec->context().tag, exec->granted_mb());
  buffer_pool_.Unregister(id);
  ++counters_.suspends;
  suspended_[id] = std::move(bundle);
  QueryOutcome outcome = MakeOutcome(*exec, OutcomeKind::kSuspended);
  outcome.lock_hold_seconds = lock_hold;
  if (exec->context().on_finish) exec->context().on_finish(outcome);
  if (observer_) observer_(outcome);
}

Status DatabaseEngine::Kill(QueryId id) {
  if (active_.count(id) == 0) return Status::NotFound("query not active");
  FinishExecution(id, OutcomeKind::kKilled);
  return Status::OK();
}

Status DatabaseEngine::Suspend(QueryId id, SuspendStrategy strategy) {
  auto it = active_.find(id);
  if (it == active_.end()) return Status::NotFound("query not active");
  SuspendedQuery bundle;
  WLM_RETURN_IF_ERROR(it->second.exec->BeginSuspend(
      strategy, sim_->Now(), config_.io_ops_per_mb, &bundle));
  pending_suspend_[id] = std::move(bundle);
  return Status::OK();
}

Result<SuspendedQuery> DatabaseEngine::TakeSuspended(QueryId id) {
  auto it = suspended_.find(id);
  if (it == suspended_.end()) {
    return Status::NotFound("no suspended query with this id");
  }
  SuspendedQuery out = std::move(it->second);
  suspended_.erase(it);
  return out;
}

Status DatabaseEngine::Resume(const SuspendedQuery& suspended,
                              ExecutionContext ctx) {
  if (active_.count(suspended.spec.id) > 0) {
    return Status::AlreadyExists("query id already executing");
  }
  Plan plan = optimizer_.BuildPlan(suspended.spec);  // for estimate fields
  plan.operators.clear();
  // Reload saved state first, then the remaining work (redo already folded
  // into remaining_ops by BeginSuspend).
  PlanOperator reload;
  reload.type = OperatorType::kUtilityOp;
  reload.cpu_seconds = 0.0;
  reload.io_ops = suspended.resume_io_cost;
  plan.operators.push_back(reload);
  for (const PlanOperator& op : suspended.remaining_ops) {
    plan.operators.push_back(op);
  }
  ++counters_.resumes;
  return DispatchWithPlan(suspended.spec, std::move(plan), std::move(ctx));
}

Status DatabaseEngine::SetDuty(QueryId id, double duty) {
  auto it = active_.find(id);
  if (it == active_.end()) return Status::NotFound("query not active");
  // Close the open interval at the old duty before the change takes hold.
  it->second.exec->SettlePhases(sim_->Now(), 0.0);
  it->second.exec->set_duty(duty);
  return Status::OK();
}

Status DatabaseEngine::Pause(QueryId id, double seconds) {
  auto it = active_.find(id);
  if (it == active_.end()) return Status::NotFound("query not active");
  if (seconds < 0.0) return Status::InvalidArgument("negative pause");
  it->second.exec->SettlePhases(sim_->Now(), 0.0);
  it->second.exec->SleepUntil(sim_->Now() + seconds);
  return Status::OK();
}

Status DatabaseEngine::SetShares(QueryId id, const ResourceShares& shares) {
  if (shares.cpu_weight <= 0.0 || shares.io_weight <= 0.0) {
    return Status::InvalidArgument("weights must be positive");
  }
  auto it = active_.find(id);
  if (it == active_.end()) return Status::NotFound("query not active");
  it->second.exec->set_shares(shares);
  return Status::OK();
}

void DatabaseEngine::SetGroupShares(const std::string& tag,
                                    const ResourceShares& shares) {
  group_shares_[tag] = shares;
}

void DatabaseEngine::ClearGroupShares(const std::string& tag) {
  group_shares_.erase(tag);
}

void DatabaseEngine::SetIoRateFactor(double factor) {
  io_rate_factor_ = std::clamp(factor, 0.0, 1.0);
}

void DatabaseEngine::SetCpusOffline(int cores) {
  cpus_offline_ = std::clamp(cores, 0, config_.num_cpus);
}

const ResourceShares* DatabaseEngine::FindGroupShares(
    const std::string& tag) const {
  auto it = group_shares_.find(tag);
  return it == group_shares_.end() ? nullptr : &it->second;
}

Result<ExecutionProgress> DatabaseEngine::GetProgress(QueryId id) const {
  auto it = active_.find(id);
  if (it == active_.end()) return Status::NotFound("query not active");
  return it->second.exec->Snapshot(sim_->Now());
}

std::vector<ExecutionProgress> DatabaseEngine::Snapshot() const {
  std::vector<ExecutionProgress> out;
  out.reserve(active_.size());
  for (const auto& [id, aq] : active_) {
    (void)id;
    out.push_back(aq.exec->Snapshot(sim_->Now()));
  }
  return out;
}

}  // namespace wlm
