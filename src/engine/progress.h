#ifndef WLM_ENGINE_PROGRESS_H_
#define WLM_ENGINE_PROGRESS_H_

#include <deque>
#include <unordered_map>

#include "engine/execution.h"
#include "engine/types.h"

namespace wlm {

/// Query progress indicator (GSLPI-style [43], Luo et al. [45]): tracks the
/// observed processing speed of each running query and continuously
/// estimates remaining execution time as remaining-work / recent-speed.
/// The paper highlights progress indicators as the automation that replaces
/// manually set execution-time thresholds in execution control.
class ProgressTracker {
 public:
  /// `io_ops_per_second` normalizes I/O into work units;
  /// `window` is how many recent observations form the "current speed".
  explicit ProgressTracker(double io_ops_per_second, size_t window = 8);

  /// Feeds one monitor sample for a running query.
  void Observe(const ExecutionProgress& progress, double now);
  /// Drops state for a finished query.
  void Forget(QueryId id);

  /// Estimated seconds until completion; falls back to the lifetime
  /// average speed when the window is too fresh, and to +inf (a very large
  /// number) when the query has made no progress at all.
  double EstimateRemainingSeconds(const ExecutionProgress& progress) const;

  /// Fraction done as last observed (0 if never observed).
  double LastFraction(QueryId id) const;

  size_t tracked_count() const { return history_.size(); }

 private:
  struct Sample {
    double time;
    double work_done;  // cpu_used + io_used / io_rate
  };

  double io_rate_;
  size_t window_;
  std::unordered_map<QueryId, std::deque<Sample>> history_;
  std::unordered_map<QueryId, double> last_fraction_;
};

}  // namespace wlm

#endif  // WLM_ENGINE_PROGRESS_H_
