#ifndef WLM_ENGINE_MEMORY_GOVERNOR_H_
#define WLM_ENGINE_MEMORY_GOVERNOR_H_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>

namespace wlm {

/// Result of a work-memory grant request.
struct MemoryGrant {
  double granted_mb = 0.0;
  /// I/O inflation the query suffers because it must spill: 1.0 when fully
  /// granted, up to 1 + spill_penalty when granted nothing.
  double spill_factor = 1.0;
};

/// Per-quota-group reservation and cap (SQL Server resource pools reserve
/// MIN and cap at MAX for *memory* as well as CPU [50]).
struct MemoryQuota {
  double min_mb = 0.0;
  double max_mb = std::numeric_limits<double>::infinity();
};

/// Work-memory pool. Queries request their working-set size at dispatch;
/// when the pool is over-committed they receive partial grants and pay a
/// proportional spill penalty (extra I/O). This is the primary mechanism
/// that makes over-admission degrade throughput — the knee-and-decline
/// curve the paper's admission-control discussion (Section 3.2) describes.
///
/// Optional quota groups add resource-pool semantics: a group's MIN is
/// reserved (other groups cannot take it even when idle) and its MAX caps
/// its total consumption. Tags map to quota groups via SetGroupAlias, so
/// several workload groups can share one pool's quota.
class MemoryGovernor {
 public:
  /// `spill_penalty` scales how brutal spilling is: a query granted half of
  /// its request runs with io multiplied by (1 + 0.5 * spill_penalty).
  explicit MemoryGovernor(double total_mb, double spill_penalty = 3.0);

  /// Grants min(requested, available-for-tag) MB and computes the spill
  /// factor. A zero request returns a full (1.0) grant. The untagged
  /// overload behaves like a tag with no quota (it still respects other
  /// groups' reservations).
  MemoryGrant Grant(double requested_mb) { return Grant("", requested_mb); }
  MemoryGrant Grant(const std::string& tag, double requested_mb);
  /// Returns a previous grant to the pool.
  void Release(double granted_mb) { Release("", granted_mb); }
  void Release(const std::string& tag, double granted_mb);

  /// Fault-injection hook: reserves `mb` of the pool as unavailable
  /// (models an external memory-pressure spike). New grants shrink
  /// accordingly — and spill harder — while the pressure lasts; memory
  /// already granted is unaffected. Clamped to >= 0; 0 clears.
  void SetPressureMb(double mb);
  double pressure_mb() const { return pressure_mb_; }

  /// Installs a quota for `group` (replacing any previous one).
  void SetGroupQuota(const std::string& group, MemoryQuota quota);
  /// Routes a tag into a quota group (e.g. several workload groups into
  /// one resource pool).
  void SetGroupAlias(const std::string& tag, const std::string& group);

  double total_mb() const { return total_mb_; }
  double used_mb() const { return used_mb_; }
  double free_mb() const { return total_mb_ - used_mb_; }
  double utilization() const {
    return total_mb_ > 0.0 ? used_mb_ / total_mb_ : 0.0;
  }
  double spill_penalty() const { return spill_penalty_; }
  /// Memory currently used by a quota group.
  double GroupUsed(const std::string& group) const;

  // --- attribution counters (telemetry / profiling) ------------------------
  /// High-water mark of pool usage since construction.
  double peak_used_mb() const { return peak_used_mb_; }
  /// Grants issued below the requested size (the queries paying a spill
  /// penalty) and all grants issued.
  uint64_t short_grants() const { return short_grants_; }
  uint64_t grants_issued() const { return grants_issued_; }

 private:
  const std::string& GroupFor(const std::string& tag) const;
  /// MB available to `group`: pool free space minus the unfilled MIN
  /// reservations of *other* groups, capped by the group's own MAX
  /// headroom.
  double AvailableFor(const std::string& group) const;

  double total_mb_;
  double spill_penalty_;
  double used_mb_ = 0.0;
  double pressure_mb_ = 0.0;
  double peak_used_mb_ = 0.0;
  uint64_t short_grants_ = 0;
  uint64_t grants_issued_ = 0;
  std::unordered_map<std::string, MemoryQuota> quotas_;
  std::unordered_map<std::string, std::string> aliases_;
  std::unordered_map<std::string, double> group_used_;
};

}  // namespace wlm

#endif  // WLM_ENGINE_MEMORY_GOVERNOR_H_
