#include "engine/lock_manager.h"

#include <algorithm>
#include <cassert>

namespace wlm {

bool LockManager::LockState::HeldExclusive() const {
  return holders.size() == 1 &&
         holders.begin()->second == LockMode::kExclusive;
}

bool LockManager::Compatible(const LockState& state, TxnId txn,
                             LockMode mode) {
  for (const auto& [holder, held_mode] : state.holders) {
    if (holder == txn) continue;  // own locks never conflict
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

void LockManager::RecordGrant(TxnId txn, LockKey key) {
  // try_emplace: an upgrade or re-acquire keeps the original grant time.
  txn_locks_[txn].try_emplace(key,
                              time_source_ ? time_source_() : 0.0);
}

bool LockManager::Acquire(TxnId txn, LockKey key, LockMode mode) {
  LockState& state = table_[key];

  auto held = state.holders.find(txn);
  if (held != state.holders.end()) {
    if (held->second == LockMode::kExclusive || mode == LockMode::kShared) {
      return true;  // already strong enough
    }
    // Upgrade request: fall through to the compatibility check (own lock is
    // skipped there).
  }

  // FIFO fairness: a new request must also wait behind queued waiters so
  // writers are not starved (unless it's an upgrade, which jumps the queue
  // to avoid trivially self-induced deadlocks).
  bool is_upgrade = held != state.holders.end();
  bool must_queue = !Compatible(state, txn, mode) ||
                    (!is_upgrade && !state.queue.empty());
  if (!must_queue) {
    state.holders[txn] = mode;
    RecordGrant(txn, key);
    return true;
  }

  if (is_upgrade) {
    state.queue.push_front(Waiter{txn, mode});
  } else {
    state.queue.push_back(Waiter{txn, mode});
  }
  waiting_on_[txn] = key;
  ++waits_;
  return false;
}

void LockManager::GrantWaiters(LockKey key) {
  auto it = table_.find(key);
  if (it == table_.end()) return;
  LockState& state = it->second;
  std::vector<Waiter> granted;
  while (!state.queue.empty()) {
    const Waiter& w = state.queue.front();
    if (!Compatible(state, w.txn, w.mode)) break;
    state.holders[w.txn] = w.mode;
    RecordGrant(w.txn, key);
    waiting_on_.erase(w.txn);
    granted.push_back(w);
    state.queue.pop_front();
    // Only one exclusive grant can proceed; shared grants continue.
    if (w.mode == LockMode::kExclusive) break;
  }
  if (state.holders.empty() && state.queue.empty()) table_.erase(it);
  if (grant_cb_) {
    for (const Waiter& w : granted) grant_cb_(w.txn, key);
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  // Cancel a pending wait, if any.
  auto wait_it = waiting_on_.find(txn);
  if (wait_it != waiting_on_.end()) {
    LockKey key = wait_it->second;
    auto table_it = table_.find(key);
    if (table_it != table_.end()) {
      auto& q = table_it->second.queue;
      q.erase(std::remove_if(q.begin(), q.end(),
                             [txn](const Waiter& w) { return w.txn == txn; }),
              q.end());
    }
    waiting_on_.erase(wait_it);
    // The head of the queue may now be grantable (e.g. a cancelled upgrade).
    GrantWaiters(key);
  }

  auto locks_it = txn_locks_.find(txn);
  if (locks_it == txn_locks_.end()) return;
  std::vector<LockKey> keys;
  keys.reserve(locks_it->second.size());
  double now = time_source_ ? time_source_() : 0.0;
  for (const auto& [key, granted_at] : locks_it->second) {
    keys.push_back(key);
    if (time_source_) {
      hold_seconds_released_ += std::max(0.0, now - granted_at);
    }
  }
  txn_locks_.erase(locks_it);
  // Deterministic release order.
  std::sort(keys.begin(), keys.end());
  for (LockKey key : keys) {
    auto table_it = table_.find(key);
    if (table_it == table_.end()) continue;
    table_it->second.holders.erase(txn);
    GrantWaiters(key);
    table_it = table_.find(key);
    if (table_it != table_.end() && table_it->second.holders.empty() &&
        table_it->second.queue.empty()) {
      table_.erase(table_it);
    }
  }
}

bool LockManager::IsBlocked(TxnId txn) const {
  return waiting_on_.count(txn) > 0;
}

std::vector<TxnId> LockManager::FindDeadlockVictims() const {
  // Build wait-for edges: waiter -> every holder of the key it waits on.
  std::unordered_map<TxnId, std::vector<TxnId>> edges;
  for (const auto& [txn, key] : waiting_on_) {
    auto it = table_.find(key);
    if (it == table_.end()) continue;
    for (const auto& [holder, mode] : it->second.holders) {
      (void)mode;
      if (holder != txn) edges[txn].push_back(holder);
    }
  }
  for (auto& [txn, targets] : edges) {
    (void)txn;
    std::sort(targets.begin(), targets.end());
  }

  std::vector<TxnId> victims;
  std::unordered_set<TxnId> dead;  // already chosen as victims
  // Iterative DFS cycle detection from each waiting txn.
  std::unordered_set<TxnId> visited;
  for (const auto& [start, key] : waiting_on_) {
    (void)key;
    if (visited.count(start) || dead.count(start)) continue;
    // path-based DFS
    std::unordered_map<TxnId, size_t> on_path;  // txn -> index in path
    std::vector<std::pair<TxnId, size_t>> frames{{start, 0}};
    on_path[start] = 0;
    std::vector<TxnId> path{start};
    while (!frames.empty()) {
      auto& [node, edge_idx] = frames.back();
      auto edge_it = edges.find(node);
      if (edge_it == edges.end() || edge_idx >= edge_it->second.size()) {
        visited.insert(node);
        on_path.erase(node);
        path.pop_back();
        frames.pop_back();
        continue;
      }
      TxnId next = edge_it->second[edge_idx++];
      if (dead.count(next)) continue;
      auto cyc = on_path.find(next);
      if (cyc != on_path.end()) {
        // Cycle: path[cyc->second .. end]. Victim = youngest (largest id).
        TxnId victim = next;
        for (size_t i = cyc->second; i < path.size(); ++i) {
          victim = std::max(victim, path[i]);
        }
        victims.push_back(victim);
        dead.insert(victim);
        continue;
      }
      if (visited.count(next)) continue;
      frames.emplace_back(next, 0);
      on_path[next] = path.size();
      path.push_back(next);
    }
  }
  return victims;
}

double LockManager::ConflictRatio() const {
  size_t total = 0;
  size_t active = 0;
  for (const auto& [txn, keys] : txn_locks_) {
    total += keys.size();
    if (!IsBlocked(txn)) active += keys.size();
  }
  if (active == 0) return total == 0 ? 1.0 : static_cast<double>(total + 1);
  return static_cast<double>(total) / static_cast<double>(active);
}

size_t LockManager::total_locks_held() const {
  size_t total = 0;
  for (const auto& [txn, keys] : txn_locks_) {
    (void)txn;
    total += keys.size();
  }
  return total;
}

size_t LockManager::blocked_txn_count() const { return waiting_on_.size(); }

double LockManager::HeldSeconds(TxnId txn, double now) const {
  if (!time_source_) return 0.0;
  auto it = txn_locks_.find(txn);
  if (it == txn_locks_.end()) return 0.0;
  double total = 0.0;
  for (const auto& [key, granted_at] : it->second) {
    (void)key;
    total += std::max(0.0, now - granted_at);
  }
  return total;
}

}  // namespace wlm
