#include "engine/catalog.h"

#include <cmath>

namespace wlm {

void Catalog::AddTable(TableSpec spec) {
  spec.pages = std::max<int64_t>(
      1, (spec.rows * spec.row_bytes + kPageBytes - 1) / kPageBytes);
  tables_[spec.name] = std::move(spec);
}

Result<TableSpec> Catalog::Lookup(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table: " + name);
  return it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, spec] : tables_) names.push_back(name);
  return names;
}

Catalog Catalog::TpchLike(double scale_factor) {
  Catalog catalog;
  auto add = [&](const std::string& name, double rows, int row_bytes) {
    TableSpec spec;
    spec.name = name;
    spec.rows = static_cast<int64_t>(rows * scale_factor);
    spec.row_bytes = row_bytes;
    catalog.AddTable(std::move(spec));
  };
  add("lineitem", 6'000'000, 120);
  add("orders", 1'500'000, 110);
  add("customer", 150'000, 180);
  add("part", 200'000, 160);
  add("partsupp", 800'000, 140);
  add("supplier", 10'000, 160);
  add("nation", 25, 120);
  add("region", 5, 120);
  return catalog;
}

Catalog Catalog::TpccLike(int warehouses) {
  Catalog catalog;
  auto add = [&](const std::string& name, int64_t rows, int row_bytes) {
    TableSpec spec;
    spec.name = name;
    spec.rows = rows;
    spec.row_bytes = row_bytes;
    catalog.AddTable(std::move(spec));
  };
  int64_t w = warehouses;
  add("warehouse", w, 90);
  add("district", w * 10, 95);
  add("customer_t", w * 30'000, 650);
  add("stock", w * 100'000, 310);
  add("item", 100'000, 80);
  add("orders_t", w * 30'000, 25);
  add("order_line", w * 300'000, 55);
  add("new_order", w * 9'000, 10);
  add("history", w * 30'000, 45);
  return catalog;
}

}  // namespace wlm
