#ifndef WLM_ENGINE_ENGINE_H_
#define WLM_ENGINE_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/buffer_pool.h"
#include "engine/execution.h"
#include "engine/lock_manager.h"
#include "engine/memory_governor.h"
#include "engine/optimizer.h"
#include "engine/plan.h"
#include "engine/types.h"
#include "sim/simulation.h"

namespace wlm {

/// Capacity and behaviour of the simulated database server.
struct EngineConfig {
  /// Number of CPUs (CPU-seconds of service per second).
  int num_cpus = 4;
  /// Disk subsystem throughput, I/O operations per second.
  double io_ops_per_second = 2000.0;
  /// Work-memory pool size, MB.
  double memory_mb = 4096.0;
  /// Spill severity (see MemoryGovernor).
  double spill_penalty = 3.0;
  /// Resource-distribution quantum, simulated seconds.
  double tick_seconds = 0.05;
  /// I/O ops needed to write/read one MB of suspended-query state.
  double io_ops_per_mb = 10.0;
  /// Buffer-pool size in pages; 0 disables buffer-pool modeling (every
  /// read goes to the device). When enabled, service-class buffer
  /// priorities (BufferPool::SetGroupPriority) shift hit ratios.
  int64_t buffer_pool_pages = 0;
  /// How often the deadlock detector runs.
  double deadlock_check_period = 0.5;
  OptimizerConfig optimizer;
};

/// Aggregate lifetime counters.
struct EngineCounters {
  uint64_t dispatched = 0;
  uint64_t completed = 0;
  uint64_t killed = 0;
  uint64_t deadlock_aborts = 0;
  uint64_t suspends = 0;
  uint64_t resumes = 0;
  double cpu_used_seconds = 0.0;
  double io_ops_done = 0.0;
};

/// The simulated DBMS execution engine: weighted-fair-share CPU/IO
/// scheduling across concurrently running queries, strict-2PL locking with
/// deadlock detection, memory grants with spill penalties, and the
/// execution-control hooks (kill, suspend/resume, throttle, share changes)
/// that every workload-management technique in the paper manipulates.
///
/// The engine deliberately has *no* admission queue of its own: everything
/// dispatched runs immediately (or blocks on locks). Admission control,
/// queueing and scheduling live above it in `wlm::WorkloadManager`, exactly
/// as the paper places them in front of "the database execution engine".
class DatabaseEngine {
 public:
  using FinishCallback = std::function<void(const QueryOutcome&)>;

  DatabaseEngine(Simulation* sim, EngineConfig config = EngineConfig());
  ~DatabaseEngine();
  DatabaseEngine(const DatabaseEngine&) = delete;
  DatabaseEngine& operator=(const DatabaseEngine&) = delete;

  const EngineConfig& config() const { return config_; }
  Simulation* sim() { return sim_; }
  const Optimizer& optimizer() const { return optimizer_; }
  LockManager& lock_manager() { return lock_manager_; }
  MemoryGovernor& memory() { return memory_; }
  BufferPool& buffer_pool() { return buffer_pool_; }

  /// Global observer fired after every per-dispatch callback.
  void set_finish_observer(FinishCallback cb) { observer_ = std::move(cb); }

  /// Starts executing `spec` immediately. Fails if the id is already
  /// active.
  [[nodiscard]] Status Dispatch(const QuerySpec& spec, ExecutionContext ctx);
  /// As Dispatch, but runs the caller-provided plan (query restructuring
  /// dispatches sub-plans this way).
  [[nodiscard]] Status DispatchWithPlan(const QuerySpec& spec, Plan plan,
                          ExecutionContext ctx);

  /// Terminates a running query; resources are released immediately.
  [[nodiscard]] Status Kill(QueryId id);
  /// Begins suspension; the outcome callback fires with
  /// OutcomeKind::kSuspended once the state flush completes, after which
  /// TakeSuspended() yields the resume bundle.
  [[nodiscard]] Status Suspend(QueryId id, SuspendStrategy strategy);
  /// Removes and returns the bundle of a fully suspended query.
  [[nodiscard]] Result<SuspendedQuery> TakeSuspended(QueryId id);
  /// Re-dispatches a suspended query: reloads state (paying the resume
  /// I/O), re-acquires locks and memory, and continues the remaining work.
  [[nodiscard]] Status Resume(const SuspendedQuery& suspended, ExecutionContext ctx);

  /// Constant throttle: caps the query at `duty` (1.0 = full speed,
  /// 0.25 = quarter speed). Models the evenly distributed self-imposed
  /// sleeps of Powley et al.'s *constant* throttling.
  [[nodiscard]] Status SetDuty(QueryId id, double duty);
  /// Interrupt throttle: a single contiguous pause of `seconds`.
  [[nodiscard]] Status Pause(QueryId id, double seconds);
  /// Changes the resource-access weights (priority aging / reallocation).
  [[nodiscard]] Status SetShares(QueryId id, const ResourceShares& shares);

  /// Pools every query whose context tag equals `tag` into one fair-share
  /// group with the given weights: capacity is first divided *across
  /// groups* (each ungrouped query is its own group with its own weight),
  /// then within a group across its queries. This is the engine surface
  /// behind workload-level allocations — economic reallocation [78] and
  /// resource-pool reservations [50].
  void SetGroupShares(const std::string& tag, const ResourceShares& shares);
  void ClearGroupShares(const std::string& tag);
  /// Group weights for `tag`, or nullptr if the tag is ungrouped.
  const ResourceShares* FindGroupShares(const std::string& tag) const;

  // --- fault-injection surface ---------------------------------------------
  // Degradation hooks the fault injector drives. They scale the capacity
  // the tick distributes; demands, accounting and progress semantics are
  // untouched, so recovery restores exactly the healthy behaviour.

  /// Scales the disk subsystem's delivered rate: 1.0 = healthy,
  /// 0.25 = degraded to a quarter, 0.0 = full I/O stall. Clamped to [0, 1].
  void SetIoRateFactor(double factor);
  double io_rate_factor() const { return io_rate_factor_; }
  /// Takes `cores` CPUs offline (clamped to [0, num_cpus]); pass 0 to
  /// bring every core back.
  void SetCpusOffline(int cores);
  int cpus_offline() const { return cpus_offline_; }

  // --- introspection -------------------------------------------------------
  [[nodiscard]] bool IsActive(QueryId id) const { return active_.count(id) > 0; }
  size_t running_count() const { return active_.size(); }
  [[nodiscard]] Result<ExecutionProgress> GetProgress(QueryId id) const;
  /// Progress of every active execution, ordered by query id.
  std::vector<ExecutionProgress> Snapshot() const;
  /// Fraction of CPU / IO capacity granted during the last tick.
  double cpu_utilization() const { return cpu_utilization_; }
  double io_utilization() const { return io_utilization_; }
  /// Exponentially smoothed utilizations (~1s horizon) for controllers
  /// that must not react to single-tick gaps between arrivals.
  double smoothed_cpu_utilization() const { return smoothed_cpu_; }
  double smoothed_io_utilization() const { return smoothed_io_; }
  double ConflictRatio() const { return lock_manager_.ConflictRatio(); }
  const EngineCounters& counters() const { return counters_; }

 private:
  struct ActiveQuery {
    std::unique_ptr<QueryExecution> exec;
  };

  void EnsureTicking();
  void Tick();
  void CheckDeadlocks();
  void ContinueAcquiringLocks(QueryExecution* exec);
  void OnLockGranted(TxnId txn, LockKey key);
  /// Removes the execution and fires callbacks. `kind` must not be
  /// kSuspended (use FinalizeSuspend).
  void FinishExecution(QueryId id, OutcomeKind kind);
  void FinalizeSuspend(QueryId id);
  QueryOutcome MakeOutcome(const QueryExecution& exec, OutcomeKind kind) const;

  Simulation* sim_;
  EngineConfig config_;
  Optimizer optimizer_;
  LockManager lock_manager_;
  MemoryGovernor memory_;
  BufferPool buffer_pool_;
  PeriodicTask tick_;
  PeriodicTask deadlock_task_;

  std::map<QueryId, ActiveQuery> active_;  // ordered for determinism
  std::unordered_map<std::string, ResourceShares> group_shares_;
  std::unordered_map<QueryId, SuspendedQuery> pending_suspend_;
  std::unordered_map<QueryId, SuspendedQuery> suspended_;
  FinishCallback observer_;
  EngineCounters counters_;
  double cpu_utilization_ = 0.0;
  double io_utilization_ = 0.0;
  double smoothed_cpu_ = 0.0;
  double smoothed_io_ = 0.0;
  double io_rate_factor_ = 1.0;
  int cpus_offline_ = 0;
};

}  // namespace wlm

#endif  // WLM_ENGINE_ENGINE_H_
