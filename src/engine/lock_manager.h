#ifndef WLM_ENGINE_LOCK_MANAGER_H_
#define WLM_ENGINE_LOCK_MANAGER_H_

#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "engine/types.h"

namespace wlm {

/// Lock modes: shared (readers) and exclusive (writers).
enum class LockMode { kShared, kExclusive };

/// Strict two-phase locking lock table with FIFO grant queues, wait-for
/// graph deadlock detection and the Moenkeberg & Weikum conflict-ratio
/// metric [56] that the conflict-ratio admission controller thresholds on.
class LockManager {
 public:
  /// Called when a previously queued request is granted.
  using GrantCallback = std::function<void(TxnId, LockKey)>;

  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  void set_grant_callback(GrantCallback cb) { grant_cb_ = std::move(cb); }

  /// Clock used to timestamp grants for hold-time attribution. Without
  /// one (direct unit-test usage) grants are untimed and HeldSeconds
  /// reports 0.
  void set_time_source(std::function<double()> now) {
    time_source_ = std::move(now);
  }

  /// Requests `key` in `mode` for `txn`. Returns true if granted
  /// immediately; false if the request was queued (the grant callback fires
  /// later). Re-acquiring a held key (same or weaker mode) is a no-op grant;
  /// upgrade shared->exclusive is supported and queues if other holders
  /// exist.
  [[nodiscard]] bool Acquire(TxnId txn, LockKey key, LockMode mode);

  /// Releases everything `txn` holds and cancels its queued requests,
  /// granting any newly compatible waiters.
  void ReleaseAll(TxnId txn);

  /// True if `txn` currently waits on some key.
  [[nodiscard]] bool IsBlocked(TxnId txn) const;

  /// Detects wait-for cycles. Returns one victim per cycle, chosen as the
  /// youngest (largest id) transaction in the cycle. The caller aborts the
  /// victims (via ReleaseAll plus its own bookkeeping).
  std::vector<TxnId> FindDeadlockVictims() const;

  /// Moenkeberg & Weikum conflict ratio: (#locks held by all transactions)
  /// / (#locks held by transactions that are not blocked). 1.0 when nothing
  /// is blocked; rising past ~1.3 signals lock thrashing.
  double ConflictRatio() const;

  /// Sum over `txn`'s held locks of (now - grant time): the lock-hold
  /// footprint it currently imposes. 0 without a time source.
  double HeldSeconds(TxnId txn, double now) const;

  /// Counters for the monitor.
  size_t total_locks_held() const;
  size_t blocked_txn_count() const;
  size_t txn_count() const { return txn_locks_.size(); }
  uint64_t deadlocks_detected() const { return deadlocks_detected_; }
  uint64_t waits() const { return waits_; }
  /// Cumulative hold seconds of every lock released so far.
  double hold_seconds_released() const { return hold_seconds_released_; }

 private:
  struct Waiter {
    TxnId txn;
    LockMode mode;
  };
  struct LockState {
    // Current holders; if exclusive, exactly one entry.
    std::unordered_map<TxnId, LockMode> holders;
    std::deque<Waiter> queue;
    [[nodiscard]] bool HeldExclusive() const;
  };

  // Grants from the head of `key`'s queue while compatible.
  void GrantWaiters(LockKey key);
  static bool Compatible(const LockState& state, TxnId txn, LockMode mode);

  // Records when `txn` first held `key`, for hold-time attribution.
  void RecordGrant(TxnId txn, LockKey key);

  std::unordered_map<LockKey, LockState> table_;
  // txn -> keys held, each with its grant time (0 when untimed)
  std::unordered_map<TxnId, std::unordered_map<LockKey, double>> txn_locks_;
  // txn -> key it waits for (each txn waits on at most one key because
  // acquisition is sequential)
  std::unordered_map<TxnId, LockKey> waiting_on_;
  GrantCallback grant_cb_;
  std::function<double()> time_source_;
  uint64_t deadlocks_detected_ = 0;
  uint64_t waits_ = 0;
  double hold_seconds_released_ = 0.0;
};

}  // namespace wlm

#endif  // WLM_ENGINE_LOCK_MANAGER_H_
