#include "engine/buffer_pool.h"

#include <algorithm>

namespace wlm {

BufferPool::BufferPool(int64_t capacity_pages, double max_hit_ratio)
    : capacity_pages_(capacity_pages), max_hit_ratio_(max_hit_ratio) {}

void BufferPool::SetGroupPriority(const std::string& tag, double weight) {
  group_priority_[tag] = std::max(1e-6, weight);
}

double BufferPool::GroupPriority(const std::string& tag) const {
  auto it = group_priority_.find(tag);
  return it == group_priority_.end() ? 1.0 : it->second;
}

double BufferPool::HitRatioFor(const std::string& tag,
                               double working_pages) const {
  if (!enabled() || working_pages <= 0.0) return 0.0;
  // Weighted split of the pool across groups with demand.
  double weight_sum = 0.0;
  bool tag_active = group_working_.count(tag) > 0;
  for (const auto& [group, working] : group_working_) {
    if (working > 0.0) weight_sum += GroupPriority(group);
  }
  if (!tag_active) weight_sum += GroupPriority(tag);
  if (weight_sum <= 0.0) return 0.0;
  double group_pages = static_cast<double>(capacity_pages_) *
                       GroupPriority(tag) / weight_sum;
  double group_working = working_pages;
  auto it = group_working_.find(tag);
  if (it != group_working_.end()) group_working = it->second;
  if (group_working <= 0.0) return 0.0;
  // Pages within the group are spread in proportion to working sets, so
  // every member of the group sees the same ratio.
  return std::min(max_hit_ratio_, group_pages / group_working);
}

double BufferPool::Register(QueryId id, const std::string& tag,
                            double working_pages) {
  if (!enabled()) return 0.0;
  working_pages = std::max(0.0, working_pages);
  Unregister(id);  // idempotence
  members_[id] = Member{tag, working_pages};
  group_working_[tag] += working_pages;
  double ratio = HitRatioFor(tag, working_pages);
  double avoided = working_pages * ratio;
  avoided_ops_ += avoided;
  group_avoided_[tag] += avoided;
  return ratio;
}

double BufferPool::GroupAvoidedOps(const std::string& tag) const {
  auto it = group_avoided_.find(tag);
  return it == group_avoided_.end() ? 0.0 : it->second;
}

void BufferPool::Unregister(QueryId id) {
  auto it = members_.find(id);
  if (it == members_.end()) return;
  auto group = group_working_.find(it->second.tag);
  if (group != group_working_.end()) {
    group->second = std::max(0.0, group->second - it->second.working_pages);
    if (group->second <= 0.0) group_working_.erase(group);
  }
  members_.erase(it);
}

}  // namespace wlm
