#ifndef WLM_SYSTEMS_RESOURCE_GOVERNOR_H_
#define WLM_SYSTEMS_RESOURCE_GOVERNOR_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/interfaces.h"
#include "core/workload_manager.h"

namespace wlm {

/// Facade modeled on Microsoft SQL Server Resource Governor + Query
/// Governor [50][51]:
///
///  - *Resource pools* reserve a MIN share of CPU and cap consumption at a
///    MAX share. MIN maps onto engine weights (weighted fair sharing
///    honours reservations under contention); MAX is enforced by a
///    measuring controller that trims the duty cycle of the pool's
///    queries when the pool exceeds its cap.
///  - *Workload groups* bind session requests to a pool with an
///    importance and an optional per-group concurrency cap.
///  - *Classification*: a user-written classifier function evaluated per
///    session assigns the workload group (unmatched requests land in the
///    `default` group).
///  - *Query governor cost limit*: rejects queries whose estimated
///    execution time exceeds the limit (0 = off).
class ResourceGovernorFacade {
 public:
  struct ResourcePool {
    std::string name;
    /// Guaranteed CPU fraction (sum over pools <= 1).
    double min_cpu = 0.0;
    /// Consumption cap, in [min_cpu, 1].
    double max_cpu = 1.0;
    /// Memory reservation/cap as fractions of the engine's work-memory
    /// pool (0 / 1 = no reservation / no cap).
    double min_memory = 0.0;
    double max_memory = 1.0;
  };

  struct WorkloadGroup {
    std::string name;
    std::string pool;
    BusinessPriority importance = BusinessPriority::kMedium;
    /// Per-group concurrency cap (0 = unlimited).
    int group_request_max = 0;
    std::vector<ServiceLevelObjective> slos;
  };

  /// The classifier function: returns a workload-group name or nullopt
  /// (-> "default").
  using ClassifierFunction =
      std::function<std::optional<std::string>(const Request&)>;

  explicit ResourceGovernorFacade(WorkloadManager* manager);

  void CreatePool(ResourcePool pool);
  void CreateWorkloadGroup(WorkloadGroup group);
  void RegisterClassifierFunction(ClassifierFunction fn);
  /// 0 disables (the SQL Server default).
  void set_query_governor_cost_limit(double seconds) {
    query_governor_cost_limit_ = seconds;
  }

  /// Wires pools/groups/classifier into the manager. Predefines the
  /// `default` pool and group, as the product does.
  Status Build();

  /// "Resource Pool Stats": measured CPU share of a pool over the last
  /// control interval.
  double PoolCpuUsage(const std::string& pool) const;
  const std::map<std::string, ResourcePool>& pools() const { return pools_; }

 private:
  /// Enforces pool MAX caps by trimming victim duty cycles.
  class PoolCapController;

  WorkloadManager* manager_;
  std::map<std::string, ResourcePool> pools_;
  std::vector<WorkloadGroup> groups_;
  std::vector<ClassifierFunction> classifier_functions_;
  double query_governor_cost_limit_ = 0.0;
  bool built_ = false;
  PoolCapController* cap_controller_ = nullptr;  // owned by the manager
  std::unordered_map<std::string, std::string> group_to_pool_;
};

}  // namespace wlm

#endif  // WLM_SYSTEMS_RESOURCE_GOVERNOR_H_
