#include "systems/teradata_asm.h"

#include <algorithm>
#include <map>
#include <memory>

#include "admission/threshold_admission.h"
#include "characterization/static_classifier.h"
#include "common/stats.h"

namespace wlm {

/// Teradata "filters": arrival-time rejection of unwanted logons/queries.
class TeradataAsmFacade::FilterAdmission : public AdmissionController {
 public:
  FilterAdmission(std::vector<ObjectAccessFilter> access,
                  std::vector<QueryResourceFilter> resource,
                  int64_t* rejections)
      : access_(std::move(access)),
        resource_(std::move(resource)),
        rejections_(rejections) {}

  Status OnArrival(const Request& request,
                   const WorkloadManager& manager) override {
    (void)manager;
    for (const ObjectAccessFilter& f : access_) {
      bool app_match =
          !f.application || request.spec.session.application == *f.application;
      bool user_match = !f.user || request.spec.session.user == *f.user;
      if (app_match && user_match && (f.application || f.user)) {
        ++*rejections_;
        return Status::Rejected("object access filter");
      }
    }
    for (const QueryResourceFilter& f : resource_) {
      if (static_cast<double>(request.plan.est_rows) > f.max_est_rows) {
        ++*rejections_;
        return Status::Rejected("query accesses too many rows");
      }
      if (request.plan.est_elapsed_seconds > f.max_est_seconds) {
        ++*rejections_;
        return Status::Rejected("query would take too long");
      }
    }
    return Status::OK();
  }

  TechniqueInfo info() const override {
    TechniqueInfo info;
    info.name = "Teradata filters";
    info.technique_class = TechniqueClass::kAdmissionControl;
    info.subclass = TechniqueSubclass::kThresholdBasedAdmission;
    info.description =
        "Object access and query resource filters reject unwanted "
        "logons and queries before execution.";
    info.source = "Teradata DWM [72]";
    return info;
  }

 private:
  std::vector<ObjectAccessFilter> access_;
  std::vector<QueryResourceFilter> resource_;
  int64_t* rejections_;
};

TeradataAsmFacade::TeradataAsmFacade(WorkloadManager* manager)
    : manager_(manager) {}

void TeradataAsmFacade::AddObjectAccessFilter(ObjectAccessFilter filter) {
  access_filters_.push_back(std::move(filter));
}

void TeradataAsmFacade::AddQueryResourceFilter(QueryResourceFilter filter) {
  resource_filters_.push_back(filter);
}

void TeradataAsmFacade::AddThrottle(ObjectThrottle throttle) {
  throttles_.push_back(std::move(throttle));
}

void TeradataAsmFacade::AddWorkloadDefinition(WorkloadDefinitionRule rule) {
  definitions_.push_back(std::move(rule));
}

Status TeradataAsmFacade::Build() {
  if (built_) return Status::FailedPrecondition("already built");
  built_ = true;

  // Workload definitions -> WLM workloads + classifier rules.
  auto classifier = std::make_unique<StaticClassifier>();
  MplAdmission::Config mpl_config;
  bool need_mpl = false;
  QueryKillController::Config kill_config;
  bool need_kill = false;
  PriorityAgingController::Config aging_config;
  bool need_aging = false;

  for (const WorkloadDefinitionRule& wd : definitions_) {
    WorkloadDefinition def;
    def.name = wd.name;
    def.priority = wd.priority;
    def.slos = wd.slgs;
    manager_->DefineWorkload(std::move(def));

    ClassificationRule rule;
    rule.workload = wd.name;
    rule.application = wd.application;
    rule.user = wd.user;
    rule.client_ip = wd.client_ip;
    rule.kind = wd.kind;
    classifier->AddRule(std::move(rule));

    if (wd.concurrency_throttle > 0) {
      mpl_config.per_workload_mpl[wd.name] = wd.concurrency_throttle;
      need_mpl = true;
    }
    if (wd.exception) {
      if (wd.exception->action == ExceptionAction::kAbort) {
        kill_config.max_elapsed_seconds =
            kill_config.max_elapsed_seconds > 0.0
                ? std::min(kill_config.max_elapsed_seconds,
                           wd.exception->max_elapsed_seconds)
                : wd.exception->max_elapsed_seconds;
        kill_config.workloads.insert(wd.name);
        need_kill = true;
      } else {
        aging_config.elapsed_threshold_seconds =
            wd.exception->max_elapsed_seconds;
        aging_config.workloads.insert(wd.name);
        need_aging = true;
      }
    }
  }
  manager_->set_classifier(std::move(classifier));

  // Filters run first.
  manager_->AddAdmissionController(std::make_unique<FilterAdmission>(
      access_filters_, resource_filters_, &filter_rejections_));

  // Throttles (concurrency rules).
  for (const ObjectThrottle& t : throttles_) {
    if (t.limit <= 0) continue;
    if (t.workload.empty()) {
      mpl_config.max_mpl = t.limit;
    } else {
      mpl_config.per_workload_mpl[t.workload] = t.limit;
    }
    need_mpl = true;
  }
  if (need_mpl) {
    manager_->AddAdmissionController(
        std::make_unique<MplAdmission>(mpl_config));
  }

  // Exception handling by the regulator.
  if (need_kill) {
    auto killer = std::make_unique<QueryKillController>(kill_config);
    killer_ = killer.get();
    manager_->AddExecutionController(std::move(killer));
  }
  if (need_aging) {
    auto aging = std::make_unique<PriorityAgingController>(aging_config);
    aging_ = aging.get();
    manager_->AddExecutionController(std::move(aging));
  }
  return Status::OK();
}

std::vector<TeradataAsmFacade::WorkloadRecommendation>
TeradataAsmFacade::AnalyzeQueryLog(const std::vector<const Request*>& log,
                                   int64_t min_group_size, double slack) {
  // Group completed queries by (application, kind) — the analyzer's
  // "specify dimensions and group queries into candidate workloads".
  std::map<std::pair<std::string, QueryKind>, std::vector<const Request*>>
      groups;
  for (const Request* r : log) {
    if (r->state != RequestState::kCompleted) continue;
    groups[{r->spec.session.application, r->spec.kind}].push_back(r);
  }

  std::vector<WorkloadRecommendation> out;
  for (const auto& [key, requests] : groups) {
    if (static_cast<int64_t>(requests.size()) < min_group_size) continue;
    Percentiles responses;
    double total_est = 0.0;
    for (const Request* r : requests) {
      responses.Add(r->ResponseTime());
      total_est += r->plan.est_elapsed_seconds;
    }
    WorkloadRecommendation rec;
    rec.sample_queries = static_cast<int64_t>(requests.size());
    rec.observed_p90_response = responses.Percentile(90);
    rec.definition.name = key.first + ":" + QueryKindToString(key.second);
    rec.definition.application = key.first;
    rec.definition.kind = key.second;
    // Short, frequent work is presumed revenue-generating (high priority);
    // long analytical work defaults lower — the DBA refines this.
    double mean_est = total_est / static_cast<double>(requests.size());
    rec.definition.priority = mean_est < 1.0 ? BusinessPriority::kHigh
                                             : BusinessPriority::kLow;
    rec.definition.slgs.push_back(ServiceLevelObjective::PercentileResponse(
        90, rec.observed_p90_response * slack));
    out.push_back(std::move(rec));
  }
  return out;
}

int64_t TeradataAsmFacade::exception_aborts() const {
  return killer_ != nullptr ? killer_->kills() : 0;
}

int64_t TeradataAsmFacade::exception_demotions() const {
  return aging_ != nullptr ? aging_->demotions() : 0;
}

}  // namespace wlm
