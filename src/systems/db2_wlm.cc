#include "systems/db2_wlm.h"

#include <algorithm>
#include <memory>

#include "characterization/static_classifier.h"

namespace wlm {
namespace {

/// Maps a DB2-style 1..10 priority into an engine weight.
double PriorityToWeight(int priority) {
  return std::clamp(priority, 1, 10);
}

BusinessPriority BusinessFromAgent(int agent_priority) {
  if (agent_priority >= 8) return BusinessPriority::kHigh;
  if (agent_priority >= 5) return BusinessPriority::kMedium;
  if (agent_priority >= 3) return BusinessPriority::kLow;
  return BusinessPriority::kBackground;
}

}  // namespace

Db2WorkloadManagerFacade::Db2WorkloadManagerFacade(WorkloadManager* manager)
    : manager_(manager) {}

void Db2WorkloadManagerFacade::CreateServiceClass(ServiceClass sc) {
  service_classes_.push_back(std::move(sc));
}

void Db2WorkloadManagerFacade::CreateWorkload(WorkloadDef workload) {
  workloads_.push_back(std::move(workload));
}

void Db2WorkloadManagerFacade::CreateWorkClass(WorkClass work_class) {
  work_classes_.push_back(std::move(work_class));
}

void Db2WorkloadManagerFacade::CreateThreshold(Threshold threshold) {
  thresholds_.push_back(std::move(threshold));
}

Status Db2WorkloadManagerFacade::Build() {
  if (built_) return Status::FailedPrecondition("already built");
  built_ = true;

  // --- Management: service classes become WorkloadDefinitions. ---------
  for (const ServiceClass& sc : service_classes_) {
    WorkloadDefinition def;
    def.name = sc.name;
    def.priority = sc.business_priority != BusinessPriority::kMedium
                       ? sc.business_priority
                       : BusinessFromAgent(sc.agent_priority);
    def.slos = sc.slos;
    def.shares.cpu_weight = PriorityToWeight(sc.agent_priority);
    def.shares.io_weight = PriorityToWeight(sc.prefetch_priority);
    manager_->DefineWorkload(std::move(def));
    if (manager_->engine()->buffer_pool().enabled()) {
      manager_->engine()->buffer_pool().SetGroupPriority(
          sc.name, PriorityToWeight(sc.bufferpool_priority));
    }
  }

  // --- Identification: workloads (origin) + work classes (type). -------
  auto classifier = std::make_unique<StaticClassifier>();
  for (const WorkloadDef& w : workloads_) {
    ClassificationRule rule;
    rule.workload = w.service_class;
    rule.application = w.application;
    rule.user = w.user;
    rule.client_ip = w.client_ip;
    classifier->AddRule(std::move(rule));
  }
  for (const WorkClass& wc : work_classes_) {
    ClassificationRule rule;
    rule.workload = wc.service_class;
    rule.stmt = wc.stmt;
    rule.kind = wc.kind;
    rule.min_est_timerons = wc.min_est_timerons;
    rule.max_est_timerons = wc.max_est_timerons;
    rule.min_est_rows = wc.min_est_rows;
    rule.max_est_rows = wc.max_est_rows;
    classifier->AddRule(std::move(rule));
  }
  manager_->set_classifier(std::move(classifier));

  // --- Thresholds -> controllers. ---------------------------------------
  QueryCostAdmission::Config cost_config;
  bool have_cost_threshold = false;
  MplAdmission::Config mpl_config;
  bool have_mpl_threshold = false;
  PriorityAgingController::Config aging_config;
  bool have_remap = false;
  QueryKillController::Config kill_config;
  bool have_kill = false;

  for (const Threshold& t : thresholds_) {
    switch (t.metric) {
      case ThresholdMetric::kEstimatedCost:
        // StopExecution on estimated cost = arrival rejection.
        if (t.service_class.empty()) {
          cost_config.max_timerons =
              std::min(cost_config.max_timerons, t.value);
        } else {
          cost_config.per_workload_timerons[t.service_class] = t.value;
        }
        have_cost_threshold = true;
        break;
      case ThresholdMetric::kConcurrentDatabaseActivities:
        mpl_config.max_mpl = static_cast<int>(t.value);
        have_mpl_threshold = true;
        break;
      case ThresholdMetric::kConcurrentWorkloadActivities:
        mpl_config.per_workload_mpl[t.service_class] =
            static_cast<int>(t.value);
        have_mpl_threshold = true;
        break;
      case ThresholdMetric::kElapsedTime:
        if (t.action == ThresholdAction::kRemapDown) {
          aging_config.elapsed_threshold_seconds = t.value;
          aging_config.repeat_every_seconds = t.value;
          if (!t.service_class.empty()) {
            aging_config.workloads.insert(t.service_class);
          }
          have_remap = true;
        } else {
          kill_config.max_elapsed_seconds = t.value;
          if (!t.service_class.empty()) {
            kill_config.workloads.insert(t.service_class);
          }
          have_kill = true;
        }
        break;
      case ThresholdMetric::kRowsReturned:
        aging_config.rows_threshold = static_cast<int64_t>(t.value);
        if (!t.service_class.empty()) {
          aging_config.workloads.insert(t.service_class);
        }
        have_remap = true;
        break;
    }
  }

  if (have_cost_threshold) {
    auto cost = std::make_unique<QueryCostAdmission>(cost_config);
    cost_admission_ = cost.get();
    manager_->AddAdmissionController(std::move(cost));
  }
  if (have_mpl_threshold) {
    manager_->AddAdmissionController(
        std::make_unique<MplAdmission>(mpl_config));
  }
  if (have_remap) {
    auto aging = std::make_unique<PriorityAgingController>(aging_config);
    aging_ = aging.get();
    manager_->AddExecutionController(std::move(aging));
  }
  if (have_kill) {
    auto killer = std::make_unique<QueryKillController>(kill_config);
    killer_ = killer.get();
    manager_->AddExecutionController(std::move(killer));
  }
  return Status::OK();
}

int64_t Db2WorkloadManagerFacade::stop_execution_count() const {
  int64_t count = 0;
  if (killer_ != nullptr) count += killer_->kills();
  if (cost_admission_ != nullptr) count += cost_admission_->rejected_count();
  return count;
}

int64_t Db2WorkloadManagerFacade::remap_count() const {
  return aging_ != nullptr ? aging_->demotions() : 0;
}

}  // namespace wlm
