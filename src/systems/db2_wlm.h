#ifndef WLM_SYSTEMS_DB2_WLM_H_
#define WLM_SYSTEMS_DB2_WLM_H_

#include <optional>
#include <string>
#include <vector>

#include "admission/threshold_admission.h"
#include "core/workload_manager.h"
#include "execution/kill.h"
#include "execution/priority_aging.h"

namespace wlm {

/// Facade modeled on IBM DB2 Workload Manager [30]: the identification /
/// management / monitoring stages built from this library's techniques.
///
///  - *Identification*: DB2 "workloads" map connections (application,
///    user, client IP) to service classes; "work classes" map work by
///    type (statement type, estimated cost, estimated rows).
///  - *Management*: service (sub)classes define the execution environment
///    — agent (CPU), prefetch (I/O) and buffer-pool priorities become
///    engine resource weights; thresholds (elapsed time, estimated cost,
///    rows returned, concurrent activities) trigger actions: stop
///    execution, remap to a lower subclass (priority aging), or queue.
///  - *Monitoring*: the underlying wlm::Monitor per-service-class stats
///    plus this facade's threshold-violation counters stand in for DB2's
///    event monitors.
///
/// Configure with Create* calls, then Build() wires everything into the
/// WorkloadManager.
class Db2WorkloadManagerFacade {
 public:
  /// DB2 agent priorities run -20..20; we accept 1..10 and map to engine
  /// weights.
  struct ServiceClass {
    std::string name;
    int agent_priority = 5;       // CPU access priority, 1..10
    int prefetch_priority = 5;    // I/O access priority, 1..10
    int bufferpool_priority = 5;  // page priority, 1..10 (needs the
                                  // engine's buffer pool enabled)
    BusinessPriority business_priority = BusinessPriority::kMedium;
    std::vector<ServiceLevelObjective> slos;
  };

  /// Connection-attribute based workload (the DB2 "workload" object).
  struct WorkloadDef {
    std::string name;
    std::optional<std::string> application;
    std::optional<std::string> user;
    std::optional<std::string> client_ip;
    std::string service_class;
  };

  /// Type-based work class within a work class set. The predictive
  /// elements mirror DB2's: estimated cost (timerons) and estimated
  /// return rows ("create a work class for all large queries with
  /// estimated return rows more than 500,000").
  struct WorkClass {
    std::string name;
    std::optional<StatementType> stmt;
    std::optional<QueryKind> kind;
    double min_est_timerons = 0.0;
    double max_est_timerons = std::numeric_limits<double>::infinity();
    double min_est_rows = 0.0;
    double max_est_rows = std::numeric_limits<double>::infinity();
    std::string service_class;
  };

  enum class ThresholdMetric {
    kElapsedTime,
    kEstimatedCost,
    kRowsReturned,
    kConcurrentDatabaseActivities,  // database-wide MPL
    kConcurrentWorkloadActivities,  // per-service-class MPL
  };
  enum class ThresholdAction {
    kStopExecution,  // reject at arrival (EstimatedCost) or kill (Elapsed)
    kRemapDown,      // priority aging to a lower subclass
    kQueue,          // hold in the wait queue (concurrency)
  };
  struct Threshold {
    std::string name;
    ThresholdMetric metric = ThresholdMetric::kElapsedTime;
    double value = 0.0;
    ThresholdAction action = ThresholdAction::kStopExecution;
    /// Empty = database-wide; otherwise applies to one service class.
    std::string service_class;
  };

  explicit Db2WorkloadManagerFacade(WorkloadManager* manager);

  void CreateServiceClass(ServiceClass sc);
  void CreateWorkload(WorkloadDef workload);
  void CreateWorkClass(WorkClass work_class);
  void CreateThreshold(Threshold threshold);

  /// Installs classifier, admission controllers and execution controllers
  /// into the WorkloadManager. Call once after all Create* calls.
  Status Build();

  /// "Threshold violations event monitor": counts of actions taken.
  int64_t stop_execution_count() const;
  int64_t remap_count() const;

 private:
  WorkloadManager* manager_;
  std::vector<ServiceClass> service_classes_;
  std::vector<WorkloadDef> workloads_;
  std::vector<WorkClass> work_classes_;
  std::vector<Threshold> thresholds_;
  bool built_ = false;
  // Non-owning views into controllers handed to the manager.
  const PriorityAgingController* aging_ = nullptr;
  const QueryKillController* killer_ = nullptr;
  const QueryCostAdmission* cost_admission_ = nullptr;
};

}  // namespace wlm

#endif  // WLM_SYSTEMS_DB2_WLM_H_
