#include "systems/resource_governor.h"

#include <algorithm>
#include <memory>

#include "admission/threshold_admission.h"
#include "characterization/static_classifier.h"

namespace wlm {

/// Measures each pool's CPU consumption over the monitor interval (delta
/// of per-query cpu_used) and trims/restores duty cycles so the pool
/// respects its MAX cap — the "governing" half of Resource Governor.
class ResourceGovernorFacade::PoolCapController : public ExecutionController {
 public:
  PoolCapController(std::map<std::string, ResourcePool>* pools,
                    std::unordered_map<std::string, std::string>* group_pool)
      : pools_(pools), group_to_pool_(group_pool) {}

  void OnSample(const SystemIndicators& indicators,
                WorkloadManager& manager) override {
    (void)indicators;
    double interval = manager.monitor()->interval();
    double capacity =
        static_cast<double>(manager.engine()->config().num_cpus) * interval;

    // Per-pool CPU consumed this interval.
    std::map<std::string, double> pool_cpu;
    std::map<std::string, std::vector<QueryId>> pool_queries;
    std::unordered_map<QueryId, double> next_seen;
    for (const ExecutionProgress& p : manager.engine()->Snapshot()) {
      const Request* request = manager.Find(p.id);
      if (request == nullptr) continue;
      auto pool_it = group_to_pool_->find(request->workload);
      if (pool_it == group_to_pool_->end()) continue;
      double last = 0.0;
      auto seen = last_cpu_.find(p.id);
      if (seen != last_cpu_.end()) last = seen->second;
      pool_cpu[pool_it->second] += std::max(0.0, p.cpu_used - last);
      pool_queries[pool_it->second].push_back(p.id);
      next_seen[p.id] = p.cpu_used;
    }
    last_cpu_ = std::move(next_seen);

    for (auto& [name, pool] : *pools_) {
      double usage = capacity > 0.0 ? pool_cpu[name] / capacity : 0.0;
      usage_[name] = usage;
      auto queries = pool_queries.find(name);
      if (queries == pool_queries.end()) continue;
      double& duty = duty_[name];
      if (duty == 0.0) duty = 1.0;
      if (usage > pool.max_cpu * 1.05) {
        duty = std::max(0.05, duty * pool.max_cpu / usage);
      } else if (usage < pool.max_cpu * 0.9 && duty < 1.0) {
        duty = std::min(1.0, duty * 1.25);
      }
      for (QueryId id : queries->second) {
        (void)manager.ThrottleRequest(id, duty);
      }
    }
  }

  double usage(const std::string& pool) const {
    auto it = usage_.find(pool);
    return it == usage_.end() ? 0.0 : it->second;
  }

  TechniqueInfo info() const override {
    TechniqueInfo info;
    info.name = "Resource pool MIN/MAX allocation";
    info.technique_class = TechniqueClass::kExecutionControl;
    info.subclass = TechniqueSubclass::kReprioritization;
    info.description =
        "Resource pools reserve minimum CPU shares via weights and "
        "enforce maximum consumption by trimming duty cycles of the "
        "pool's running requests (dynamic resource reallocation).";
    info.source = "SQL Server Resource Governor [50]";
    return info;
  }

 private:
  std::map<std::string, ResourcePool>* pools_;
  std::unordered_map<std::string, std::string>* group_to_pool_;
  std::unordered_map<QueryId, double> last_cpu_;
  std::map<std::string, double> usage_;
  std::map<std::string, double> duty_;
};

ResourceGovernorFacade::ResourceGovernorFacade(WorkloadManager* manager)
    : manager_(manager) {}

void ResourceGovernorFacade::CreatePool(ResourcePool pool) {
  pools_[pool.name] = std::move(pool);
}

void ResourceGovernorFacade::CreateWorkloadGroup(WorkloadGroup group) {
  groups_.push_back(std::move(group));
}

void ResourceGovernorFacade::RegisterClassifierFunction(
    ClassifierFunction fn) {
  classifier_functions_.push_back(std::move(fn));
}

Status ResourceGovernorFacade::Build() {
  if (built_) return Status::FailedPrecondition("already built");
  built_ = true;

  // Predefined pools/groups, as in the product.
  if (pools_.count("default") == 0) {
    CreatePool(ResourcePool{"default", 0.0, 1.0});
  }
  bool has_default_group = false;
  for (const WorkloadGroup& g : groups_) {
    has_default_group = has_default_group || g.name == "default";
  }
  if (!has_default_group) {
    groups_.push_back(WorkloadGroup{"default", "default",
                                    BusinessPriority::kMedium, 0, {}});
  }

  double min_sum = 0.0;
  double memory_min_sum = 0.0;
  for (const auto& [name, pool] : pools_) {
    (void)name;
    min_sum += pool.min_cpu;
    memory_min_sum += pool.min_memory;
    if (pool.max_cpu < pool.min_cpu || pool.max_memory < pool.min_memory) {
      return Status::InvalidArgument("pool MAX below MIN");
    }
  }
  if (min_sum > 1.0 + 1e-9 || memory_min_sum > 1.0 + 1e-9) {
    return Status::InvalidArgument("sum of pool MINs exceeds 100%");
  }

  // Memory MIN/MAX: quota groups keyed by pool, workload groups aliased
  // into their pool.
  double total_memory = manager_->engine()->config().memory_mb;
  for (const auto& [name, pool] : pools_) {
    if (pool.min_memory > 0.0 || pool.max_memory < 1.0) {
      MemoryQuota quota;
      quota.min_mb = pool.min_memory * total_memory;
      quota.max_mb = pool.max_memory * total_memory;
      manager_->engine()->memory().SetGroupQuota(name, quota);
    }
  }

  MplAdmission::Config mpl_config;
  bool need_mpl = false;
  for (const WorkloadGroup& g : groups_) {
    auto pool_it = pools_.find(g.pool);
    if (pool_it == pools_.end()) {
      return Status::NotFound("workload group references unknown pool: " +
                              g.pool);
    }
    group_to_pool_[g.name] = g.pool;
    manager_->engine()->memory().SetGroupAlias(g.name, g.pool);
    WorkloadDefinition def;
    def.name = g.name;
    def.priority = g.importance;
    def.slos = g.slos;
    // MIN reservation via weights: weight proportional to the reserved
    // share (plus a floor so zero-MIN pools still run).
    double weight = 0.5 + 10.0 * pool_it->second.min_cpu;
    def.shares.cpu_weight = weight;
    def.shares.io_weight = weight;
    manager_->DefineWorkload(std::move(def));
    if (g.group_request_max > 0) {
      mpl_config.per_workload_mpl[g.name] = g.group_request_max;
      need_mpl = true;
    }
  }

  // Classification: user-written functions, falling through to `default`.
  auto classifier = std::make_unique<StaticClassifier>();
  for (ClassifierFunction& fn : classifier_functions_) {
    classifier->AddCriteriaFunction(
        [fn = std::move(fn)](const Request& request) { return fn(request); });
  }
  ClassificationRule fallback;
  fallback.workload = "default";
  classifier->AddRule(std::move(fallback));
  manager_->set_classifier(std::move(classifier));

  if (query_governor_cost_limit_ > 0.0) {
    QueryCostAdmission::Config config;
    config.max_est_seconds = query_governor_cost_limit_;
    manager_->AddAdmissionController(
        std::make_unique<QueryCostAdmission>(config));
  }
  if (need_mpl) {
    manager_->AddAdmissionController(
        std::make_unique<MplAdmission>(mpl_config));
  }

  auto cap = std::make_unique<PoolCapController>(&pools_, &group_to_pool_);
  cap_controller_ = cap.get();
  manager_->AddExecutionController(std::move(cap));
  return Status::OK();
}

double ResourceGovernorFacade::PoolCpuUsage(const std::string& pool) const {
  return cap_controller_ != nullptr ? cap_controller_->usage(pool) : 0.0;
}

}  // namespace wlm
