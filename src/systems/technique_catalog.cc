#include "systems/technique_catalog.h"

#include "admission/operating_periods.h"
#include "admission/prediction_admission.h"
#include "admission/threshold_admission.h"
#include "autonomic/mape.h"
#include "characterization/dynamic_classifier.h"
#include "characterization/static_classifier.h"
#include "execution/fuzzy_controller.h"
#include "execution/kill.h"
#include "execution/priority_aging.h"
#include "execution/progress_control.h"
#include "execution/reallocation.h"
#include "execution/suspend_resume.h"
#include "execution/throttling.h"
#include "scheduling/batch_scheduler.h"
#include "scheduling/mpl_scheduler.h"
#include "scheduling/queue_schedulers.h"
#include "scheduling/restructuring.h"
#include "scheduling/utility_scheduler.h"

namespace wlm {

void RegisterAllTechniques(TaxonomyRegistry* registry) {
  // Workload characterization.
  registry->Register(StaticClassifier().info());
  registry->Register(LearnedRequestClassifier().info());

  // Admission control.
  registry->Register(QueryCostAdmission(QueryCostAdmission::Config()).info());
  registry->Register(MplAdmission(MplAdmission::Config()).info());
  registry->Register(ConflictRatioAdmission().info());
  registry->Register(ThroughputFeedbackAdmission().info());
  registry->Register(IndicatorAdmission().info());
  registry->Register(
      OperatingPeriodAdmission(OperatingPeriodAdmission::Config()).info());
  registry->Register(PqrAdmission().info());
  registry->Register(SimilarityAdmission().info());

  // Scheduling.
  registry->Register(FifoScheduler().info());
  registry->Register(PriorityScheduler().info());
  registry->Register(RankScheduler().info());
  registry->Register(FeedbackMplScheduler().info());
  registry->Register(
      UtilityScheduler(UtilityScheduler::Config()).info());
  registry->Register(BatchScheduler().info());
  registry->Register(SlicedQuerySubmitter::Info());

  // Execution control.
  registry->Register(PriorityAgingController().info());
  registry->Register(EconomicReallocationController(
                         EconomicReallocationController::Config())
                         .info());
  registry->Register(QueryKillController().info());
  {
    QueryKillController::Config resubmit;
    resubmit.resubmit = true;
    registry->Register(QueryKillController(resubmit).info());
  }
  registry->Register(SuspendResumeController().info());
  registry->Register(UtilityThrottleController().info());
  registry->Register(QueryThrottleController().info());
  {
    QueryThrottleController::Config blackbox;
    blackbox.controller = QueryThrottleController::ControllerKind::kBlackBox;
    registry->Register(QueryThrottleController(blackbox).info());
  }
  registry->Register(FuzzyExecutionController().info());
  registry->Register(
      ProgressAwareController(2000.0, ProgressAwareController::Config())
          .info());
  {
    SuspendedResumeGate gate;
    registry->Register(gate.info());
  }
  registry->Register(AutonomicController().info());
}

}  // namespace wlm
