#ifndef WLM_SYSTEMS_TECHNIQUE_CATALOG_H_
#define WLM_SYSTEMS_TECHNIQUE_CATALOG_H_

#include "core/taxonomy.h"

namespace wlm {

/// Registers every technique implemented in this library into `registry`,
/// so the full Figure 1 tree can be rendered with live implementations as
/// leaves. Idempotent.
void RegisterAllTechniques(TaxonomyRegistry* registry);

}  // namespace wlm

#endif  // WLM_SYSTEMS_TECHNIQUE_CATALOG_H_
