#ifndef WLM_SYSTEMS_TERADATA_ASM_H_
#define WLM_SYSTEMS_TERADATA_ASM_H_

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/workload_manager.h"
#include "execution/kill.h"
#include "execution/priority_aging.h"

namespace wlm {

/// Facade modeled on Teradata Active System Management [71][72].
///
///  - *Filters* reject unwanted work before execution: object access
///    filters (by origin) and query resource filters (estimated rows /
///    estimated time too large).
///  - *Throttles* (concurrency rules) cap active queries per workload or
///    database-wide; utility throttles cap concurrent utilities.
///  - *Workload definitions* carry classification criteria ("who" /
///    "what"), a priority + resource allocation group, a workload
///    concurrency throttle (excess queries go to the delay queue),
///    exception criteria with actions (abort / demote), and SLGs.
///  - The *regulator* is the runtime enforcing all of the above — here,
///    the WorkloadManager pipeline the Build() call assembles.
///  - The *workload analyzer* mines the query log (DBQL stand-in: the
///    manager's completed requests) and recommends workload definitions
///    with SLGs derived from observed percentiles.
class TeradataAsmFacade {
 public:
  struct ObjectAccessFilter {
    std::optional<std::string> application;
    std::optional<std::string> user;
  };
  struct QueryResourceFilter {
    double max_est_rows = std::numeric_limits<double>::infinity();
    double max_est_seconds = std::numeric_limits<double>::infinity();
  };
  struct ObjectThrottle {
    /// Empty workload = database-wide cap.
    std::string workload;
    int limit = 0;
  };

  enum class ExceptionAction { kAbort, kDemote };
  struct ExceptionRule {
    /// Triggers when a query of the workload runs past this.
    double max_elapsed_seconds = 0.0;
    ExceptionAction action = ExceptionAction::kAbort;
  };

  struct WorkloadDefinitionRule {
    std::string name;
    // "who"
    std::optional<std::string> application;
    std::optional<std::string> user;
    std::optional<std::string> client_ip;
    // "what"
    std::optional<QueryKind> kind;
    double max_est_seconds = std::numeric_limits<double>::infinity();
    // behaviour
    BusinessPriority priority = BusinessPriority::kMedium;
    int concurrency_throttle = 0;  // 0 = unlimited
    std::optional<ExceptionRule> exception;
    std::vector<ServiceLevelObjective> slgs;
  };

  /// Analyzer recommendation: a candidate workload definition plus the
  /// observed stats it was derived from.
  struct WorkloadRecommendation {
    WorkloadDefinitionRule definition;
    int64_t sample_queries = 0;
    double observed_p90_response = 0.0;
  };

  explicit TeradataAsmFacade(WorkloadManager* manager);

  void AddObjectAccessFilter(ObjectAccessFilter filter);
  void AddQueryResourceFilter(QueryResourceFilter filter);
  void AddThrottle(ObjectThrottle throttle);
  void AddWorkloadDefinition(WorkloadDefinitionRule rule);

  /// Assembles the regulator pipeline. Call once.
  Status Build();

  /// Teradata Workload Analyzer: groups a query log by (application,
  /// kind) and recommends one workload definition per group, with an SLG
  /// at the observed p90 response (padded by `slack`).
  static std::vector<WorkloadRecommendation> AnalyzeQueryLog(
      const std::vector<const Request*>& log, int64_t min_group_size = 10,
      double slack = 1.25);

  int64_t filter_rejections() const { return filter_rejections_; }
  int64_t exception_aborts() const;
  int64_t exception_demotions() const;

 private:
  class FilterAdmission;

  WorkloadManager* manager_;
  std::vector<ObjectAccessFilter> access_filters_;
  std::vector<QueryResourceFilter> resource_filters_;
  std::vector<ObjectThrottle> throttles_;
  std::vector<WorkloadDefinitionRule> definitions_;
  bool built_ = false;
  int64_t filter_rejections_ = 0;
  const QueryKillController* killer_ = nullptr;
  const PriorityAgingController* aging_ = nullptr;
};

}  // namespace wlm

#endif  // WLM_SYSTEMS_TERADATA_ASM_H_
