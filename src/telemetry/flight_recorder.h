#ifndef WLM_TELEMETRY_FLIGHT_RECORDER_H_
#define WLM_TELEMETRY_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "telemetry/event_log.h"
#include "telemetry/profile.h"

namespace wlm {

/// Controller-plane state at the instant a post-mortem fires, assembled by
/// the Telemetry facade from the hooks it has already seen.
struct ControllerStateSnapshot {
  double time = 0.0;
  bool degraded = false;       // graceful degradation in force
  int active_faults = 0;       // open fault windows
  int brownout_level = 0;      // current brownout shed level
  bool queue_lifo = false;     // CoDel discipline flipped to newest-first
  size_t queue_depth = 0;      // last monitor sample
  size_t running = 0;          // last monitor sample
  double cpu_utilization = 0.0;
  double io_utilization = 0.0;
  double memory_utilization = 0.0;
  /// Circuit breaker state per workload (0 closed, 1 half-open, 2 open).
  std::map<std::string, int> breaker_states;
};

/// One black-box dump: why it fired, what the controllers looked like, the
/// last terminal profiles and the last control-plane events.
struct PostMortem {
  double time = 0.0;
  std::string reason;
  ControllerStateSnapshot state;
  std::vector<QueryProfile> recent_profiles;  // oldest first
  std::vector<WlmEvent> recent_events;        // oldest first
};

/// The black-box flight recorder: a bounded ring of recently finished
/// query profiles that, when an anomaly trigger fires (SLO watchdog
/// violation, circuit breaker opening, fault window beginning), snapshots
/// the ring + the recent event-log tail + the controller state into a
/// deterministic post-mortem. Purely passive: it never schedules events
/// and records only simulated time.
class FlightRecorder {
 public:
  struct Options {
    /// Terminal profiles retained in the ring.
    size_t max_profiles = 128;
    /// Event-log tail captured per dump.
    size_t max_events = 256;
    /// Dumps retained; once full further triggers only count.
    size_t max_postmortems = 8;
    /// Minimum sim-seconds between dumps (dedups trigger storms: one
    /// brownout step per sample would otherwise dump every sample).
    double cooldown_seconds = 1.0;
  };

  FlightRecorder();
  explicit FlightRecorder(Options options);

  /// Feeds a finished profile into the ring (oldest evicted past bound).
  void RecordProfile(const QueryProfile& profile);

  /// Anomaly trigger. Captures a post-mortem unless within the cooldown
  /// window of the previous dump or the dump budget is spent; every call
  /// is counted either way. `log` may be nullptr.
  void Trigger(const std::string& reason,
               const ControllerStateSnapshot& state, const EventLog* log);

  /// Snapshot of the profile ring, oldest first.
  std::vector<QueryProfile> recent_profiles() const;
  const std::vector<PostMortem>& postmortems() const { return postmortems_; }
  int64_t triggers_seen() const { return triggers_seen_; }
  int64_t triggers_suppressed() const { return triggers_suppressed_; }

  /// Machine-readable dump: one JSON object per line — a "postmortem"
  /// header, then its "profile" and "event" rows. Deterministic (fixed
  /// formatting, map-ordered breaker states).
  void WriteJsonl(std::ostream& out) const;
  /// Human-readable dump of the same content.
  void WriteAscii(std::ostream& out) const;

 private:
  Options options_;
  // Fixed circular buffer, slots overwritten in place: recording a
  // profile in steady state costs one copy-assign (which reuses string
  // capacity) and never allocates — a deque of ~300-byte profiles pays a
  // chunk malloc/free per query at this element size.
  std::vector<QueryProfile> ring_;
  size_t ring_head_ = 0;  // next slot to overwrite once the ring is full
  std::vector<PostMortem> postmortems_;
  int64_t triggers_seen_ = 0;
  int64_t triggers_suppressed_ = 0;
  double last_dump_time_ = -1.0;
};

}  // namespace wlm

#endif  // WLM_TELEMETRY_FLIGHT_RECORDER_H_
