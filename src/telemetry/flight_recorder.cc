#include "telemetry/flight_recorder.h"

#include <algorithm>
#include <cstdio>

#include "telemetry/exporters.h"

namespace wlm {

namespace {

/// Fixed-precision float rendering so dumps are byte-stable across runs.
std::string Num(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

void WriteProfileJson(std::ostream& out, const QueryProfile& p) {
  out << "{\"type\":\"profile\",\"query\":" << p.id << ",\"workload\":\""
      << JsonEscape(p.workload) << "\",\"outcome\":\""
      << JsonEscape(p.outcome) << "\",\"detail\":\"" << JsonEscape(p.detail)
      << "\",\"arrival\":" << Num(p.arrival_time)
      << ",\"finish\":" << Num(p.finish_time)
      << ",\"wall\":" << Num(p.WallSeconds()) << ",\"phases\":{";
  for (size_t i = 0; i < kPhaseCount; ++i) {
    if (i > 0) out << ',';
    out << '"' << PhaseToString(static_cast<Phase>(i))
        << "\":" << Num(p.phase_seconds[i]);
  }
  out << "},\"resources\":{\"cpu_seconds\":" << Num(p.resources.cpu_seconds)
      << ",\"io_ops\":" << Num(p.resources.io_ops)
      << ",\"peak_memory_mb\":" << Num(p.resources.peak_memory_mb)
      << ",\"lock_hold_seconds\":" << Num(p.resources.lock_hold_seconds)
      << ",\"spill_factor\":" << Num(p.resources.spill_factor)
      << ",\"buffer_hit_ratio\":" << Num(p.resources.buffer_hit_ratio)
      << "},\"run_segments\":" << p.run_segments
      << ",\"explain\":\"" << JsonEscape(ExplainOutcome(p)) << "\"}\n";
}

}  // namespace

FlightRecorder::FlightRecorder() : FlightRecorder(Options()) {}

FlightRecorder::FlightRecorder(Options options) : options_(options) {
  ring_.reserve(options_.max_profiles);
}

void FlightRecorder::RecordProfile(const QueryProfile& profile) {
  if (options_.max_profiles == 0) return;
  if (ring_.size() < options_.max_profiles) {
    ring_.push_back(profile);
  } else {
    ring_[ring_head_] = profile;
    ring_head_ = (ring_head_ + 1) % options_.max_profiles;
  }
}

std::vector<QueryProfile> FlightRecorder::recent_profiles() const {
  std::vector<QueryProfile> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::Trigger(const std::string& reason,
                             const ControllerStateSnapshot& state,
                             const EventLog* log) {
  ++triggers_seen_;
  if (postmortems_.size() >= options_.max_postmortems ||
      (last_dump_time_ >= 0.0 &&
       state.time - last_dump_time_ < options_.cooldown_seconds)) {
    ++triggers_suppressed_;
    return;
  }
  last_dump_time_ = state.time;
  PostMortem dump;
  dump.time = state.time;
  dump.reason = reason;
  dump.state = state;
  dump.recent_profiles = recent_profiles();
  if (log != nullptr) {
    const std::deque<WlmEvent>& events = log->events();
    size_t take = std::min(events.size(), options_.max_events);
    dump.recent_events.assign(events.end() - static_cast<std::ptrdiff_t>(take),
                              events.end());
  }
  postmortems_.push_back(std::move(dump));
}

void FlightRecorder::WriteJsonl(std::ostream& out) const {
  for (const PostMortem& dump : postmortems_) {
    out << "{\"type\":\"postmortem\",\"time\":" << Num(dump.time)
        << ",\"reason\":\"" << JsonEscape(dump.reason)
        << "\",\"state\":{\"degraded\":"
        << (dump.state.degraded ? "true" : "false")
        << ",\"active_faults\":" << dump.state.active_faults
        << ",\"brownout_level\":" << dump.state.brownout_level
        << ",\"queue_lifo\":" << (dump.state.queue_lifo ? "true" : "false")
        << ",\"queue_depth\":" << dump.state.queue_depth
        << ",\"running\":" << dump.state.running
        << ",\"cpu_utilization\":" << Num(dump.state.cpu_utilization)
        << ",\"io_utilization\":" << Num(dump.state.io_utilization)
        << ",\"memory_utilization\":" << Num(dump.state.memory_utilization)
        << ",\"breakers\":{";
    bool first = true;
    for (const auto& [workload, breaker_state] : dump.state.breaker_states) {
      if (!first) out << ',';
      first = false;
      out << '"' << JsonEscape(workload) << "\":" << breaker_state;
    }
    out << "}},\"profiles\":" << dump.recent_profiles.size()
        << ",\"events\":" << dump.recent_events.size() << "}\n";
    for (const QueryProfile& profile : dump.recent_profiles) {
      WriteProfileJson(out, profile);
    }
    for (const WlmEvent& event : dump.recent_events) {
      out << "{\"type\":\"event\",\"time\":" << Num(event.time)
          << ",\"event\":\"" << WlmEventTypeToString(event.type)
          << "\",\"query\":" << event.query << ",\"workload\":\""
          << JsonEscape(event.workload) << "\",\"detail\":\""
          << JsonEscape(event.detail) << "\"}\n";
    }
  }
}

void FlightRecorder::WriteAscii(std::ostream& out) const {
  if (postmortems_.empty()) {
    out << "flight recorder: no post-mortems captured\n";
    return;
  }
  for (const PostMortem& dump : postmortems_) {
    out << "== post-mortem @" << Num(dump.time) << "s reason=" << dump.reason
        << " ==\n";
    out << "state: degraded=" << (dump.state.degraded ? "yes" : "no")
        << " faults=" << dump.state.active_faults
        << " brownout=" << dump.state.brownout_level
        << " queue=" << dump.state.queue_depth
        << (dump.state.queue_lifo ? " (lifo)" : " (fifo)")
        << " running=" << dump.state.running
        << " cpu=" << Num(dump.state.cpu_utilization)
        << " io=" << Num(dump.state.io_utilization) << '\n';
    for (const auto& [workload, breaker_state] : dump.state.breaker_states) {
      out << "breaker: " << workload << " state=" << breaker_state << '\n';
    }
    out << "-- last " << dump.recent_profiles.size() << " profiles --\n";
    for (const QueryProfile& p : dump.recent_profiles) {
      out << "q" << p.id << " [" << p.workload << "] " << p.outcome
          << " wall=" << Num(p.WallSeconds()) << "s";
      Phase dominant = p.DominantPhase();
      if (p.PhaseSum() > 0.0) {
        char share[48];
        std::snprintf(share, sizeof(share), " %s=%.0f%%",
                      PhaseToString(dominant),
                      p.PhaseShare(dominant) * 100.0);
        out << share;
      }
      out << " | " << ExplainOutcome(p) << '\n';
    }
    out << "-- last " << dump.recent_events.size() << " events --\n";
    for (const WlmEvent& event : dump.recent_events) {
      out << Num(event.time) << ' ' << WlmEventTypeToString(event.type)
          << " q" << event.query;
      if (!event.workload.empty()) out << " [" << event.workload << ']';
      if (!event.detail.empty()) out << ' ' << event.detail;
      out << '\n';
    }
  }
}

}  // namespace wlm
