#ifndef WLM_TELEMETRY_PROFILE_H_
#define WLM_TELEMETRY_PROFILE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/types.h"

namespace wlm {

/// Mutually exclusive phases of a request's arrival-to-terminal wall time.
/// Manager-side waits (queue, suspended, retry backoff) come from the
/// lifecycle hooks; in-engine phases come from the engine's own
/// ExecPhaseTotals decomposition. For every terminal profile the phase
/// seconds sum to `finish - arrival` up to float rounding — the
/// conservation invariant the telemetry tests enforce.
enum class Phase {
  kAdmissionQueue,  // waiting for dispatch under the normal discipline
  kOverloadQueue,   // waiting while the queue runs newest-first (CoDel
                    // overload mode) — backlog time overload control owns
  kLockWait,        // blocked in the lock manager
  kCpuRun,          // actively consuming CPU
  kIoStall,         // running but waiting on the device
  kMemoryStall,     // I/O stall caused by spill from a short memory grant
  kThrottled,       // duty-cycle sleep slices and pauses
  kSuspendFlush,    // flushing state after a suspend request
  kSuspendedWait,   // suspended, parked until re-dispatch
  kRetryBackoff,    // fault-retry backoff limbo before requeue
};

/// Number of Phase values (keep in sync with the enum).
inline constexpr size_t kPhaseCount = 10;

const char* PhaseToString(Phase phase);

/// Resource attribution of one request across all of its run segments.
struct ResourceAttribution {
  /// CPU-seconds actually consumed.
  double cpu_seconds = 0.0;
  /// Device I/O operations actually performed.
  double io_ops = 0.0;
  /// Largest work-memory grant held by any segment, in MB.
  double peak_memory_mb = 0.0;
  /// Sum over held locks of (release - grant) seconds: the lock-hold
  /// footprint this request imposed on others.
  double lock_hold_seconds = 0.0;
  /// Worst (highest) spill factor any segment ran under.
  double spill_factor = 1.0;
  /// Best buffer-pool hit ratio any segment was granted.
  double buffer_hit_ratio = 0.0;
};

/// Per-query latency decomposition + resource attribution: where every
/// second of a request's life went and what it consumed getting there.
struct QueryProfile {
  QueryId id = 0;
  /// Cluster journey id carried on the spec (0 outside a cluster): the
  /// key that stitches this shard-local profile into a cross-shard DAG.
  uint64_t journey = 0;
  std::string workload;  // service class
  QueryKind kind = QueryKind::kBiQuery;
  double arrival_time = 0.0;
  /// First dispatch into the engine; -1 while never dispatched.
  double first_dispatch_time = -1.0;
  /// Terminal time; -1 while the request is still live.
  double finish_time = -1.0;
  /// Terminal outcome name (completed / killed / aborted / rejected /
  /// shed); empty while live.
  std::string outcome;
  /// Outcome qualifier: reject gate+reason, shed reason, kill detail.
  std::string detail;
  /// Phase seconds, indexed by static_cast<size_t>(Phase).
  std::array<double, kPhaseCount> phase_seconds{};
  ResourceAttribution resources;
  int run_segments = 0;   // engine executions (dispatches + resumes)
  int suspend_count = 0;  // completed suspensions
  int requeue_count = 0;  // resubmits after kill / deadlock / fault retry

  double seconds(Phase phase) const {
    return phase_seconds[static_cast<size_t>(phase)];
  }
  /// Terminal wall time (0 while live).
  double WallSeconds() const {
    return finish_time >= 0.0 ? finish_time - arrival_time : 0.0;
  }
  double PhaseSum() const;
  /// Fraction of the phase sum spent in `phase` (0 when nothing accrued).
  double PhaseShare(Phase phase) const;
  /// Largest bucket; ties break toward the lower enum value.
  Phase DominantPhase() const;
  [[nodiscard]] bool terminal() const { return !outcome.empty(); }
};

/// Per-service-class rollup over terminal profiles.
struct ClassProfileRollup {
  int64_t count = 0;
  std::array<double, kPhaseCount> phase_seconds{};
  ResourceAttribution resources;  // sums (peak fields keep max semantics)
};

/// One line on why a request ended the way it did, for dashboards:
/// "rejected: mpl gate", "shed: brownout level 2", "slow: 78% lock_wait",
/// "healthy: 91% cpu_run".
std::string ExplainOutcome(const QueryProfile& profile);

/// Accumulates QueryProfiles, driven by the Telemetry facade's lifecycle
/// hooks. Bounded like the tracer: past `max_profiles` the oldest
/// *terminal* profile is evicted per new profile (live requests are never
/// dropped). Lookups are O(1); every externally visible listing
/// (Profiles(), rollups()) is explicitly ordered, so the hash map never
/// leaks iteration nondeterminism.
class ProfileStore {
 public:
  explicit ProfileStore(size_t max_profiles = 8192);

  /// Creates the profile of `id` at submission (no-op if present).
  /// `journey` is the cluster journey id from the spec (0 standalone).
  void Begin(QueryId id, const std::string& workload, QueryKind kind,
             double now, uint64_t journey = 0);
  /// Opens a wait segment (admission/overload queue, suspended wait,
  /// retry backoff). Any open segment is settled first.
  void OpenWait(QueryId id, Phase phase, double now);
  /// Opens the queue wait segment, choosing kAdmissionQueue or
  /// kOverloadQueue from the current queue discipline.
  void OpenQueueWait(QueryId id, double now);
  /// Settles the open wait segment (if any) into its bucket.
  void Settle(QueryId id, double now);
  /// The wait queue flipped FIFO<->LIFO: re-buckets every open queue
  /// segment at `now` so time is split exactly at the flip.
  void SetQueueDiscipline(bool lifo, double now);
  /// One engine run segment ended (any OutcomeKind): folds its phase
  /// decomposition and resource usage into the profile.
  void AccumulateSegment(QueryId id, const QueryOutcome& outcome);
  void MarkDispatched(QueryId id, double now);
  void CountRequeue(QueryId id);
  void CountSuspend(QueryId id);
  /// Terminal: settles any open segment, stamps the outcome and rolls the
  /// profile into its class rollup. Returns the finalized profile
  /// (nullptr when `id` is unknown).
  const QueryProfile* Finalize(QueryId id, double now,
                               const std::string& outcome,
                               const std::string& detail);

  const QueryProfile* Find(QueryId id) const;
  /// Open wait segment of `id` as (phase index, start time); (-1, 0) when
  /// none is open. Lets the facade emit a trace tile before settling.
  std::pair<int, double> OpenSegment(QueryId id) const;
  /// All retained profiles, in creation order.
  std::vector<const QueryProfile*> Profiles() const;
  const std::map<std::string, ClassProfileRollup>& rollups() const {
    return rollups_;
  }
  size_t size() const { return profiles_.size(); }
  int64_t evicted() const { return evicted_; }
  bool queue_lifo() const { return queue_lifo_; }

 private:
  struct Entry {
    QueryProfile profile;
    int64_t order = 0;       // creation order, for deterministic listing
    int open_phase = -1;     // static_cast<int>(Phase); -1 = none open
    double open_start = 0.0;
  };

  Entry* FindEntry(QueryId id);
  /// Settle on an already-resolved entry (skips the repeat lookup the
  /// public Settle would pay on the per-query hot path).
  void SettleEntry(Entry* entry, double now);

  size_t max_profiles_;
  int64_t next_order_ = 0;
  int64_t evicted_ = 0;
  bool queue_lifo_ = false;
  std::unordered_map<QueryId, Entry> profiles_;
  std::deque<QueryId> finished_order_;
  std::map<std::string, ClassProfileRollup> rollups_;
};

}  // namespace wlm

#endif  // WLM_TELEMETRY_PROFILE_H_
