#ifndef WLM_TELEMETRY_FEDERATION_FEDERATION_H_
#define WLM_TELEMETRY_FEDERATION_FEDERATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.h"

namespace wlm {

/// How per-shard metric families map onto cluster-level ones. Only
/// families whose name starts with `source_prefix` federate; the derived
/// name swaps the prefix for `target_prefix` (wlm_requests_completed_total
/// -> wlm_cluster_requests_completed_total).
struct FederationOptions {
  std::string source_prefix = "wlm_";
  std::string target_prefix = "wlm_cluster_";
  /// Label key carrying the source shard on per-shard gauge series.
  std::string shard_label = "shard";
  /// Label key distinguishing the min/max/sum gauge rollup series.
  std::string rollup_label = "stat";
};

/// One shard's registry offered to the federator.
struct FederationSource {
  int shard = 0;
  const MetricsRegistry* registry = nullptr;
};

/// What one Federate() call did (and what it had to drop).
struct FederationStats {
  int64_t sources = 0;
  int64_t families_merged = 0;
  int64_t series_merged = 0;
  /// Histogram series skipped because two shards disagreed on bounds.
  int64_t histogram_bound_mismatches = 0;
  /// Families skipped (no source prefix, or cross-shard type clash).
  int64_t families_skipped = 0;
};

/// Merges per-shard MetricsRegistry instances into one cluster registry:
/// counters are summed, gauges become per-shard labeled series plus
/// min/max/sum rollups, histograms merge bucket-wise (identical bounds
/// required). The merge is order-independent — sources are folded in
/// ascending shard order internally — so the federated Prometheus
/// exposition is byte-identical no matter how the caller collected the
/// sources. Purely passive: source registries are only read.
class MetricsFederator {
 public:
  explicit MetricsFederator(FederationOptions options = FederationOptions());

  const FederationOptions& options() const { return options_; }

  /// Merges `sources` into `out`. `out` is usually empty; families it
  /// already holds (e.g. the dispatcher's own cluster-scope series) are
  /// left untouched unless a derived family shares their name, in which
  /// case values merge under the same rules.
  FederationStats Federate(std::vector<FederationSource> sources,
                           MetricsRegistry* out) const;

 private:
  FederationOptions options_;
};

/// Copies every family of `source` into `out` verbatim — no rename, no
/// shard label. The dispatcher folds its own `wlm_cluster_*` families
/// into the federated exposition with this.
void CopyRegistry(const MetricsRegistry& source, MetricsRegistry* out);

/// Sum over every series of `family` (counter values or gauge values);
/// 0.0 for histogram families. Convenience for burn-rate math over a
/// federated registry.
double FamilyValueSum(const MetricsRegistry& registry,
                      const std::string& family);

}  // namespace wlm

#endif  // WLM_TELEMETRY_FEDERATION_FEDERATION_H_
