#include "telemetry/federation/timeseries_store.h"

#include <algorithm>
#include <cstdio>

namespace wlm {

namespace {

std::string F6(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

}  // namespace

TimeSeriesStore::TimeSeriesStore(size_t retention_points)
    : retention_points_(retention_points < 1 ? 1 : retention_points) {}

void TimeSeriesStore::Sample(const std::string& name, double time,
                             double value) {
  Ring& ring = series_[name];
  if (ring.points.empty()) ring.points.reserve(retention_points_);
  if (ring.count < retention_points_) {
    ring.points.push_back({time, value});
    ++ring.count;
    return;
  }
  ring.points[ring.head] = {time, value};
  ring.head = (ring.head + 1) % retention_points_;
  ++evicted_;
}

std::vector<TimePoint> TimeSeriesStore::Ordered(const Ring& ring) const {
  std::vector<TimePoint> out;
  out.reserve(ring.count);
  for (size_t i = 0; i < ring.count; ++i) {
    out.push_back(ring.points[(ring.head + i) % ring.count]);
  }
  return out;
}

std::vector<TimePoint> TimeSeriesStore::Points(const std::string& name) const {
  auto it = series_.find(name);
  if (it == series_.end()) return {};
  return Ordered(it->second);
}

std::vector<TimePoint> TimeSeriesStore::Window(const std::string& name,
                                               double from, double to) const {
  std::vector<TimePoint> out;
  for (const TimePoint& p : Points(name)) {
    if (p.time >= from && p.time <= to) out.push_back(p);
  }
  return out;
}

bool TimeSeriesStore::Latest(const std::string& name, TimePoint* out) const {
  auto it = series_.find(name);
  if (it == series_.end() || it->second.count == 0) return false;
  const Ring& ring = it->second;
  size_t last = (ring.head + ring.count - 1) % ring.count;
  *out = ring.points[last];
  return true;
}

double TimeSeriesStore::DeltaSince(const std::string& name, double from) const {
  std::vector<TimePoint> points = Points(name);
  const TimePoint* first = nullptr;
  for (const TimePoint& p : points) {
    if (p.time >= from) {
      first = &p;
      break;
    }
  }
  if (first == nullptr || first == &points.back()) return 0.0;
  return points.back().value - first->value;
}

std::vector<std::string> TimeSeriesStore::SeriesNames() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, ring] : series_) names.push_back(name);
  return names;
}

void TimeSeriesStore::WriteJsonl(std::ostream& out) const {
  for (const auto& [name, ring] : series_) {
    for (const TimePoint& p : Ordered(ring)) {
      out << "{\"series\":\"" << name << "\",\"t\":" << F6(p.time)
          << ",\"value\":" << F6(p.value) << "}\n";
    }
  }
}

std::string TimeSeriesStore::FormatAscii(const std::string& name, double from,
                                         double to, int width) const {
  static const char kLevels[] = " .:-=+*#%@";
  if (width < 1) width = 1;
  std::string line(static_cast<size_t>(width), ' ');
  std::vector<TimePoint> points = Window(name, from, to);
  if (points.empty() || to <= from) return line;
  double lo = points.front().value;
  double hi = lo;
  for (const TimePoint& p : points) {
    lo = std::min(lo, p.value);
    hi = std::max(hi, p.value);
  }
  const double span = to - from;
  const double range = hi - lo;
  for (const TimePoint& p : points) {
    int col = static_cast<int>((p.time - from) / span * (width - 1));
    col = std::clamp(col, 0, width - 1);
    int level =
        range > 0.0
            ? static_cast<int>((p.value - lo) / range * 9.0)
            : (hi > 0.0 ? 9 : 0);
    level = std::clamp(level, 0, 9);
    // Last sample in a column wins; samples arrive oldest-first so the
    // newest value represents the slot.
    line[static_cast<size_t>(col)] = kLevels[level];
  }
  return line;
}

}  // namespace wlm
