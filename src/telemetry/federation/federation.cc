#include "telemetry/federation/federation.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace wlm {

namespace {

bool HasPrefix(const std::string& name, const std::string& prefix) {
  return name.size() >= prefix.size() &&
         name.compare(0, prefix.size(), prefix) == 0;
}

/// Same canonical key the registry uses internally: labels are already
/// sorted on registered series, so serializing them joins like with like.
std::string LabelKey(const MetricLabels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '=';
    key += v;
    key += '\x1f';
  }
  return key;
}

MetricLabels WithLabel(MetricLabels labels, const std::string& key,
                       std::string value) {
  labels.emplace_back(key, std::move(value));
  return labels;
}

/// Per-series merge state, accumulated in ascending shard order.
struct MergedSeries {
  MetricLabels labels;
  double counter_sum = 0.0;
  /// (shard, value) per source gauge, shard ascending.
  std::vector<std::pair<int, double>> gauges;
  /// Source histograms, shard ascending; folded at emit time.
  std::vector<const HistogramMetric*> histograms;
};

struct MergedFamily {
  MetricType type = MetricType::kCounter;
  bool type_clash = false;
  std::string help;
  std::map<std::string, MergedSeries> series;  // keyed by serialized labels
};

}  // namespace

MetricsFederator::MetricsFederator(FederationOptions options)
    : options_(std::move(options)) {}

FederationStats MetricsFederator::Federate(
    std::vector<FederationSource> sources, MetricsRegistry* out) const {
  FederationStats stats;
  stats.sources = static_cast<int64_t>(sources.size());
  // Fold in ascending shard order no matter how the caller gathered the
  // sources: float accumulation picks up a canonical order, so the merge
  // is order-independent from the outside.
  std::sort(sources.begin(), sources.end(),
            [](const FederationSource& a, const FederationSource& b) {
              return a.shard < b.shard;
            });

  std::map<std::string, MergedFamily> merged;
  std::set<std::string> skipped;
  for (const FederationSource& source : sources) {
    if (source.registry == nullptr) continue;
    for (const MetricsRegistry::FamilyView& family :
         source.registry->Families()) {
      if (!HasPrefix(family.name, options_.source_prefix)) {
        skipped.insert(family.name);
        continue;
      }
      const std::string derived =
          options_.target_prefix +
          family.name.substr(options_.source_prefix.size());
      auto [it, inserted] = merged.try_emplace(derived);
      MergedFamily& work = it->second;
      if (inserted) {
        work.type = family.type;
      } else if (work.type != family.type) {
        work.type_clash = true;
        continue;
      }
      if (work.help.empty()) work.help = family.help;
      for (const MetricsRegistry::SeriesView& sv : family.series) {
        MergedSeries& ms = work.series[LabelKey(*sv.labels)];
        if (ms.labels.empty() && !sv.labels->empty()) ms.labels = *sv.labels;
        switch (family.type) {
          case MetricType::kCounter:
            if (sv.counter != nullptr) ms.counter_sum += sv.counter->value();
            break;
          case MetricType::kGauge:
            ms.gauges.emplace_back(
                source.shard, sv.gauge != nullptr ? sv.gauge->value() : 0.0);
            break;
          case MetricType::kHistogram:
            if (sv.histogram != nullptr) ms.histograms.push_back(sv.histogram);
            break;
        }
      }
    }
  }

  stats.families_skipped = static_cast<int64_t>(skipped.size());
  for (const auto& [name, work] : merged) {
    if (work.type_clash) {
      ++stats.families_skipped;
      continue;
    }
    if (!work.help.empty()) out->SetHelp(name, work.help);
    ++stats.families_merged;
    for (const auto& [key, ms] : work.series) {
      switch (work.type) {
        case MetricType::kCounter:
          out->GetCounter(name, ms.labels).Increment(ms.counter_sum);
          ++stats.series_merged;
          break;
        case MetricType::kGauge: {
          double min = 0.0;
          double max = 0.0;
          double sum = 0.0;
          bool first = true;
          for (const auto& [shard, value] : ms.gauges) {
            out->GetGauge(name, WithLabel(ms.labels, options_.shard_label,
                                          std::to_string(shard)))
                .Set(value);
            min = first ? value : std::min(min, value);
            max = first ? value : std::max(max, value);
            sum += value;
            first = false;
          }
          out->GetGauge(name, WithLabel(ms.labels, options_.rollup_label,
                                        "min")).Set(min);
          out->GetGauge(name, WithLabel(ms.labels, options_.rollup_label,
                                        "max")).Set(max);
          out->GetGauge(name, WithLabel(ms.labels, options_.rollup_label,
                                        "sum")).Set(sum);
          ++stats.series_merged;
          break;
        }
        case MetricType::kHistogram: {
          if (ms.histograms.empty()) break;
          HistogramMetric& target = out->GetHistogram(
              name, ms.labels, &ms.histograms.front()->bounds());
          for (const HistogramMetric* source : ms.histograms) {
            if (!target.MergeFrom(*source)) {
              ++stats.histogram_bound_mismatches;
            }
          }
          ++stats.series_merged;
          break;
        }
      }
    }
  }
  return stats;
}

void CopyRegistry(const MetricsRegistry& source, MetricsRegistry* out) {
  for (const MetricsRegistry::FamilyView& family : source.Families()) {
    if (!family.help.empty()) out->SetHelp(family.name, family.help);
    for (const MetricsRegistry::SeriesView& sv : family.series) {
      switch (family.type) {
        case MetricType::kCounter:
          out->GetCounter(family.name, *sv.labels)
              .Increment(sv.counter != nullptr ? sv.counter->value() : 0.0);
          break;
        case MetricType::kGauge:
          out->GetGauge(family.name, *sv.labels)
              .Set(sv.gauge != nullptr ? sv.gauge->value() : 0.0);
          break;
        case MetricType::kHistogram:
          if (sv.histogram != nullptr) {
            (void)out->GetHistogram(family.name, *sv.labels,
                                    &sv.histogram->bounds())
                .MergeFrom(*sv.histogram);
          }
          break;
      }
    }
  }
}

double FamilyValueSum(const MetricsRegistry& registry,
                      const std::string& family) {
  return registry.FamilyValueSum(family);
}

}  // namespace wlm
