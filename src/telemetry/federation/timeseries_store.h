#ifndef WLM_TELEMETRY_FEDERATION_TIMESERIES_STORE_H_
#define WLM_TELEMETRY_FEDERATION_TIMESERIES_STORE_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/time_series.h"  // TimePoint

namespace wlm {

/// Bounded in-memory time-series store: one fixed-size ring per series,
/// sampled on the sim clock. Old points are overwritten once a ring
/// fills (fixed retention), so memory is O(series * retention) no matter
/// how long the run is. Iteration order over series is the sorted name
/// order, and all text output uses fixed-precision formatting, so the
/// store participates in the byte-identical determinism contract.
class TimeSeriesStore {
 public:
  /// `retention_points` is the per-series ring capacity (min 1).
  explicit TimeSeriesStore(size_t retention_points = 600);

  size_t retention_points() const { return retention_points_; }

  /// Appends one point to `name`'s ring, evicting the oldest when full.
  void Sample(const std::string& name, double time, double value);

  /// Oldest-to-newest points currently retained for `name` (empty when
  /// the series is unknown).
  std::vector<TimePoint> Points(const std::string& name) const;

  /// Points with `time` in [from, to], oldest first.
  std::vector<TimePoint> Window(const std::string& name, double from,
                                double to) const;

  /// Most recent point, or {0,0} + false when the series is empty.
  bool Latest(const std::string& name, TimePoint* out) const;

  /// value(newest) - value(oldest point with time >= from); 0 when fewer
  /// than two points fall in the window. The burn-rate primitive for
  /// cumulative (counter-shaped) series.
  double DeltaSince(const std::string& name, double from) const;

  /// Sorted names of every tracked series.
  std::vector<std::string> SeriesNames() const;

  /// Total points dropped to eviction across all series.
  int64_t evicted() const { return evicted_; }

  /// One JSON object per retained point:
  /// {"series":...,"t":...,"value":...} — series in name order, points
  /// oldest first, %.6f times/values. Byte-stable for same-seed runs.
  void WriteJsonl(std::ostream& out) const;

  /// Fixed-width ASCII sparkline of `name` over [from, to]: one char per
  /// column, scaled into " .:-=+*#%@". Empty series renders all spaces.
  std::string FormatAscii(const std::string& name, double from, double to,
                          int width = 60) const;

 private:
  struct Ring {
    std::vector<TimePoint> points;  // capacity retention_points_
    size_t head = 0;                // next write slot once full
    size_t count = 0;
  };

  /// Oldest-first copy of the ring contents.
  std::vector<TimePoint> Ordered(const Ring& ring) const;

  size_t retention_points_;
  std::map<std::string, Ring> series_;
  int64_t evicted_ = 0;
};

}  // namespace wlm

#endif  // WLM_TELEMETRY_FEDERATION_TIMESERIES_STORE_H_
