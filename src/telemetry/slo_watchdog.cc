#include "telemetry/slo_watchdog.h"

#include <algorithm>
#include <cstdio>

namespace wlm {

namespace {
constexpr size_t kMaxViolationsKept = 1 << 14;
}  // namespace

SloWatchdog::SloWatchdog(Monitor* monitor, EventLog* sink,
                         MetricsRegistry* metrics)
    : monitor_(monitor), sink_(sink), metrics_(metrics) {}

void SloWatchdog::SetSlos(const std::string& workload,
                          const std::vector<ServiceLevelObjective>& slos) {
  watched_.erase(std::remove_if(watched_.begin(), watched_.end(),
                                [&](const Watched& w) {
                                  return w.workload == workload;
                                }),
                 watched_.end());
  for (size_t i = 0; i < slos.size(); ++i) {
    Watched w;
    w.workload = workload;
    w.slo = slos[i];
    w.index = i;
    watched_.push_back(std::move(w));
  }
}

void SloWatchdog::Check(const SystemIndicators& indicators) {
  for (Watched& w : watched_) {
    const TagStats& stats = monitor_->tag_stats(w.workload);
    if (stats.completed == 0) continue;  // no data, no verdict
    SloEvaluation eval = EvaluateSlo(w.slo, stats);

    if (metrics_ != nullptr) {
      metrics_
          ->GetGauge("wlm_slo_attainment",
                     {{"workload", w.workload}, {"slo", w.slo.ToString()}})
          .Set(eval.attainment);
    }
    if (eval.met) {
      w.in_violation = false;
      continue;
    }
    if (metrics_ != nullptr) {
      metrics_
          ->GetCounter("wlm_slo_violation_samples_total",
                       {{"workload", w.workload}})
          .Increment();
    }
    if (w.in_violation) continue;  // edge-triggered: record transitions only
    w.in_violation = true;

    char detail[256];
    std::snprintf(detail, sizeof(detail),
                  "slo=\"%s\" actual=%.4g target=%.4g cpu=%.2f io=%.2f "
                  "mem=%.2f running=%d blocked=%d",
                  w.slo.ToString().c_str(), eval.actual, w.slo.target,
                  indicators.cpu_utilization, indicators.io_utilization,
                  indicators.memory_utilization, indicators.running_queries,
                  indicators.blocked_queries);
    if (sink_ != nullptr) {
      WlmEvent event;
      event.time = indicators.time;
      event.type = WlmEventType::kSloViolation;
      event.query = 0;
      event.workload = w.workload;
      event.detail = detail;
      sink_->Append(std::move(event));
    }
    if (metrics_ != nullptr) {
      metrics_
          ->GetCounter("wlm_slo_violations_total", {{"workload", w.workload}})
          .Increment();
    }
    if (violations_.size() < kMaxViolationsKept) {
      Violation v;
      v.time = indicators.time;
      v.workload = w.workload;
      v.slo = w.slo;
      v.evaluation = eval;
      v.indicators = indicators;
      violations_.push_back(std::move(v));
    }
  }
}

}  // namespace wlm
