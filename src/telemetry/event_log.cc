#include "telemetry/event_log.h"

#include <algorithm>
#include <cassert>

namespace wlm {

const char* WlmEventTypeToString(WlmEventType type) {
  switch (type) {
    case WlmEventType::kSubmitted:
      return "submitted";
    case WlmEventType::kRejected:
      return "rejected";
    case WlmEventType::kDispatched:
      return "dispatched";
    case WlmEventType::kCompleted:
      return "completed";
    case WlmEventType::kKilled:
      return "killed";
    case WlmEventType::kAborted:
      return "aborted";
    case WlmEventType::kResubmitted:
      return "resubmitted";
    case WlmEventType::kSuspended:
      return "suspended";
    case WlmEventType::kResumed:
      return "resumed";
    case WlmEventType::kThrottled:
      return "throttled";
    case WlmEventType::kPaused:
      return "paused";
    case WlmEventType::kReprioritized:
      return "reprioritized";
    case WlmEventType::kSloViolation:
      return "slo_violation";
    case WlmEventType::kFaultInjected:
      return "fault_injected";
    case WlmEventType::kFaultRecovered:
      return "fault_recovered";
    case WlmEventType::kShed:
      return "shed";
    case WlmEventType::kRetryDenied:
      return "retry_denied";
    case WlmEventType::kBreakerTripped:
      return "breaker_tripped";
    case WlmEventType::kBreakerHalfOpen:
      return "breaker_half_open";
    case WlmEventType::kBreakerClosed:
      return "breaker_closed";
    case WlmEventType::kBrownoutStepped:
      return "brownout_stepped";
    case WlmEventType::kShardDown:
      return "shard_down";
    case WlmEventType::kShardRecovered:
      return "shard_recovered";
    case WlmEventType::kHedged:
      return "hedged";
  }
  return "?";
}

EventLog::EventLog(size_t max_events) : max_events_(max_events) {}

void EventLog::Append(WlmEvent event) {
  const int64_t seq = total_++;
  by_type_[static_cast<size_t>(event.type)].push_back(seq);
  by_query_[event.query].push_back(seq);
  events_.push_back(std::move(event));
  while (events_.size() > max_events_) {
    const WlmEvent& oldest = events_.front();
    // The evicted event holds the globally smallest sequence number, so it
    // must sit at the front of both of its index deques.
    auto& type_index = by_type_[static_cast<size_t>(oldest.type)];
    assert(!type_index.empty() && type_index.front() == first_seq_);
    type_index.pop_front();
    auto query_it = by_query_.find(oldest.query);
    assert(query_it != by_query_.end() &&
           query_it->second.front() == first_seq_);
    query_it->second.pop_front();
    if (query_it->second.empty()) by_query_.erase(query_it);
    events_.pop_front();
    ++first_seq_;
  }
}

void EventLog::Clear() {
  events_.clear();
  for (auto& index : by_type_) index.clear();
  by_query_.clear();
  first_seq_ = total_;
}

std::vector<WlmEvent> EventLog::OfType(WlmEventType type) const {
  const auto& index = by_type_[static_cast<size_t>(type)];
  std::vector<WlmEvent> out;
  out.reserve(index.size());
  for (int64_t seq : index) out.push_back(AtSeq(seq));
  return out;
}

std::vector<WlmEvent> EventLog::ForQuery(QueryId id) const {
  auto it = by_query_.find(id);
  if (it == by_query_.end()) return {};
  std::vector<WlmEvent> out;
  out.reserve(it->second.size());
  for (int64_t seq : it->second) out.push_back(AtSeq(seq));
  return out;
}

std::vector<WlmEvent> EventLog::InWindow(double begin, double end) const {
  auto lo = std::lower_bound(
      events_.begin(), events_.end(), begin,
      [](const WlmEvent& e, double t) { return e.time < t; });
  auto hi = std::lower_bound(
      lo, events_.end(), end,
      [](const WlmEvent& e, double t) { return e.time < t; });
  return std::vector<WlmEvent>(lo, hi);
}

int64_t EventLog::CountOf(WlmEventType type) const {
  return static_cast<int64_t>(by_type_[static_cast<size_t>(type)].size());
}

}  // namespace wlm
