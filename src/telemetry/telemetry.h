#ifndef WLM_TELEMETRY_TELEMETRY_H_
#define WLM_TELEMETRY_TELEMETRY_H_

#include <array>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/monitor.h"
#include "engine/types.h"
#include "sim/simulation.h"
#include "telemetry/event_log.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/profile.h"
#include "telemetry/slo.h"
#include "telemetry/slo_watchdog.h"
#include "telemetry/trace.h"

namespace wlm {

/// Synthetic observability tracks: control-plane episodes (fault windows,
/// overload actions, cluster routing events) render as spans of one
/// pseudo-query per track, so exported traces show them inline with the
/// queries they disturbed.
enum class SyntheticTrack {
  kFaults = 0,    ///< fault-injection windows and spontaneous aborts
  kOverload = 1,  ///< breaker open windows, brownout episodes, discipline
  kCluster = 2,   ///< dispatcher routing / shard lifecycle events
};

/// Base of the reserved synthetic-id block: the topmost 2^20 ids of the
/// QueryId space. Real query ids are assigned sequentially from small
/// integers and the WorkloadManager rejects submissions inside the block,
/// so a synthetic track id can never alias a live query (the old
/// sentinels — 0 for faults, 0xE000... for overload — could).
inline constexpr QueryId kSyntheticQueryIdBase = 0xFFFFFFFFFFF00000ULL;

constexpr QueryId SyntheticTrackId(SyntheticTrack track) {
  return kSyntheticQueryIdBase + static_cast<QueryId>(track);
}

constexpr bool IsSyntheticQueryId(QueryId id) {
  return id >= kSyntheticQueryIdBase;
}

/// Stable workload/track label for a synthetic track ("faults",
/// "overload", "cluster").
const char* SyntheticTrackName(SyntheticTrack track);

struct TelemetryOptions {
  /// When false every hook returns immediately (one predictable branch on
  /// the hot path) and nothing is recorded.
  bool enabled = true;
  /// Bound on retained per-query traces; oldest finished evicted first.
  size_t max_traces = 8192;
  /// Per-query latency decomposition + resource attribution (QueryProfile
  /// store, wlm_phase_seconds_total metrics, phase tiles in the Chrome
  /// trace). Ignored while `enabled` is false.
  bool profiling = true;
  /// Bound on retained profiles; oldest terminal evicted first.
  size_t max_profiles = 8192;
  /// Black-box flight recorder (needs `profiling`): post-mortem dumps on
  /// SLO violations, breaker trips and fault windows.
  bool flight_recorder = true;
  FlightRecorder::Options flight_recorder_options;
};

/// The observability facade the WorkloadManager drives: per-query span
/// traces, the labeled metrics registry, and the SLO watchdog, all fed
/// from the manager's lifecycle hooks and the monitor's sampling loop.
/// Purely passive — it records simulated time but never schedules events
/// or perturbs any control decision, so enabling/disabling it cannot
/// change a run's outcome.
class Telemetry {
 public:
  /// `event_log` is the manager's control-plane log; the SLO watchdog
  /// appends its violation events there. May be nullptr.
  Telemetry(Simulation* sim, Monitor* monitor, EventLog* event_log,
            TelemetryOptions options = TelemetryOptions());

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  SloWatchdog& watchdog() { return watchdog_; }
  const SloWatchdog& watchdog() const { return watchdog_; }
  /// Per-query latency decomposition + resource attribution store.
  ProfileStore& profiles() { return profiles_; }
  const ProfileStore& profiles() const { return profiles_; }
  /// Black-box flight recorder (post-mortem ring + dumps).
  FlightRecorder& flight_recorder() { return recorder_; }
  const FlightRecorder& flight_recorder() const { return recorder_; }
  [[nodiscard]] bool profiling() const { return enabled_ && profiling_; }
  /// Controller-plane state as the facade currently knows it (what a
  /// post-mortem snapshot would capture right now).
  ControllerStateSnapshot ControllerState() const;

  /// Replaces the watched SLOs of `workload` (on workload definition).
  void WatchSlos(const std::string& workload,
                 const std::vector<ServiceLevelObjective>& slos);

  // --- lifecycle hooks (all no-ops when disabled) --------------------------
  /// `journey` is the cluster-assigned journey id carried on the spec
  /// (0 outside a cluster); it lands on the QueryProfile so per-shard
  /// profiles stitch into one cross-shard journey DAG.
  void OnSubmit(QueryId id, const std::string& workload, QueryKind kind,
                uint64_t journey = 0);
  /// Admission accepted: zero-length admit span + queue span opens.
  void OnAdmitted(QueryId id, const std::string& workload);
  /// Admission refused by `gate`; the trace ends here.
  void OnRejected(QueryId id, const std::string& workload,
                  const std::string& gate, const std::string& reason);
  /// Back in the queue after a kill/deadlock resubmission or suspension
  /// has already been handled (opens a fresh queue span).
  void OnRequeued(QueryId id, const std::string& workload);
  /// A dispatch-time admission gate held the request back this round.
  void OnDispatchGated(QueryId id, const std::string& workload,
                       const std::string& gate);
  void OnDispatch(QueryId id, const std::string& workload, bool resumed);
  void OnSuspendStart(QueryId id, const std::string& workload,
                      const char* strategy);
  /// State flush finished; the request waits for resume.
  void OnSuspended(QueryId id, const std::string& workload);
  /// One engine run segment ended with any OutcomeKind (terminal or not):
  /// folds the segment's phase decomposition and resource usage into the
  /// query's profile and adds phase tiles to its trace. Fired before the
  /// outcome-specific hook (OnTerminal / OnSuspended / OnRequeued).
  void OnRunSegment(QueryId id, const std::string& workload,
                    const QueryOutcome& outcome);
  /// Terminal outcome (completed / killed / aborted).
  void OnTerminal(QueryId id, const std::string& workload,
                  const char* outcome_name, double response_seconds,
                  double queue_wait_seconds, const QueryOutcome& outcome);
  /// Timeout-escalation ladder stepped a request onto `rung`
  /// (throttle / suspend / kill / deadline_kill).
  void OnEscalation(QueryId id, const std::string& workload,
                    const char* rung);
  void OnThrottle(QueryId id, const std::string& workload, double duty);
  void OnPause(QueryId id, const std::string& workload, double seconds);
  void OnReprioritize(QueryId id, const std::string& workload,
                      const char* priority);
  // --- fault & resilience hooks --------------------------------------------
  /// A fault window opened (`kind` is the FaultKind name).
  void OnFaultBegin(const std::string& kind, const std::string& detail);
  /// The window that began at `started_at` closed; records the whole
  /// window as one kFault span on the fault track.
  void OnFaultEnd(const std::string& kind, double started_at);
  /// The injector spontaneously aborted a running request.
  void OnFaultAbort(QueryId id, const std::string& workload,
                    const std::string& reason);
  /// The resilience policy scheduled a retry after `delay_seconds`.
  void OnFaultRetry(QueryId id, const std::string& workload,
                    double delay_seconds);
  /// Graceful-degradation state flipped (MPL shed / low-priority throttle).
  void SetDegraded(bool degraded);
  // --- overload-protection hooks -------------------------------------------
  /// Overload protection dropped the request (`reason` is the shed cause:
  /// queue_full / brownout / breaker_open / codel / deadline). Ends the
  /// trace.
  void OnShed(QueryId id, const std::string& workload,
              const std::string& reason);
  /// A resilience retry was blocked (`reason`: budget / deadline).
  void OnRetryDenied(QueryId id, const std::string& workload,
                     const std::string& reason);
  /// A workload's circuit breaker changed state. `state` is the numeric
  /// CircuitBreaker::State (0 closed, 1 half-open, 2 open); when the
  /// breaker leaves the open state, `opened_at >= 0` records the whole
  /// open window as one kOverload span on the overload track.
  void OnBreakerTransition(const std::string& workload, int state,
                           const char* state_name, double opened_at,
                           const std::string& detail);
  /// The brownout shed level stepped; `entered_at >= 0` closes the
  /// episode span when the level returns to zero.
  void OnBrownoutStep(int level, double entered_at,
                      const std::string& detail);
  /// The wait queue flipped FIFO<->LIFO under the CoDel discipline.
  void OnQueueDiscipline(bool lifo);

  /// Monitor sampling instant: indicator gauges + SLO watchdog sweep.
  /// `queue_depth` and per-workload occupancy come from the manager.
  void OnMonitorSample(const SystemIndicators& indicators, size_t queue_depth,
                       size_t running_count);
  void SetWorkloadOccupancy(const std::string& workload, int queued,
                            int running);

 private:
  double Now() const;
  /// Finalizes a profile: phase metrics, flight-recorder ring, rollups.
  void FinalizeProfile(QueryId id, const std::string& outcome,
                       const std::string& detail);
  /// Emits kPhase tile spans partitioning [start, start+sum(phases)).
  void AddPhaseTiles(QueryId id, double start, const ExecPhaseTotals& phases);
  /// Fires the flight recorder with the current controller state.
  void TriggerFlightRecorder(const std::string& reason);

  Simulation* sim_;
  Monitor* monitor_;
  EventLog* event_log_;
  bool enabled_;
  bool profiling_;
  bool flight_recorder_enabled_;
  Tracer tracer_;
  MetricsRegistry metrics_;
  SloWatchdog watchdog_;
  ProfileStore profiles_;
  FlightRecorder recorder_;
  // Controller-plane state mirrored from the hooks, for post-mortems.
  bool degraded_ = false;
  int active_faults_ = 0;
  int brownout_level_ = 0;
  bool queue_lifo_ = false;
  size_t last_queue_depth_ = 0;
  size_t last_running_ = 0;
  SystemIndicators last_indicators_;
  std::map<std::string, int> breaker_states_;
  size_t violations_seen_ = 0;  // watchdog watermark for trigger edges
  // Per-workload cache of wlm_phase_seconds_total series: Counter objects
  // are heap-allocated and pointer-stable, so finalizing a query costs one
  // hash lookup instead of building + sorting + serializing a label set
  // per nonzero phase.
  std::unordered_map<std::string, std::array<Counter*, kPhaseCount>>
      phase_counters_;
};

}  // namespace wlm

#endif  // WLM_TELEMETRY_TELEMETRY_H_
