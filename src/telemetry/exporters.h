#ifndef WLM_TELEMETRY_EXPORTERS_H_
#define WLM_TELEMETRY_EXPORTERS_H_

#include <ostream>

#include "engine/monitor.h"
#include "telemetry/event_log.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace wlm {

/// Chrome trace-event JSON (the array form), loadable in Perfetto and
/// chrome://tracing. Simulated seconds become trace microseconds. Each
/// query renders as one thread (tid = creation order) of pid 1 carrying
/// its lifecycle spans as complete ("X") events; instants are zero-length
/// "X" events. When `monitor` is non-null its time series are added as
/// counter ("C") tracks.
void WriteChromeTrace(const Tracer& tracer, std::ostream& out,
                      const Monitor* monitor = nullptr);

/// Prometheus text exposition 0.0.4 of every registered metric.
void WritePrometheus(const MetricsRegistry& metrics, std::ostream& out);

/// Every monitor series as JSONL: one {"series","time","value"} object
/// per point, series in name order, points in time order.
void WriteSeriesJsonl(const Monitor& monitor, std::ostream& out);

/// Every monitor series as long-form CSV: series,time,value.
void WriteSeriesCsv(const Monitor& monitor, std::ostream& out);

/// The retained event-log window as JSONL, oldest first.
void WriteEventLogJsonl(const EventLog& log, std::ostream& out);

/// Escapes a string for inclusion in a JSON string literal (no quotes).
std::string JsonEscape(const std::string& value);

}  // namespace wlm

#endif  // WLM_TELEMETRY_EXPORTERS_H_
