#include "telemetry/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace wlm {

namespace {

/// Canonical key for a label set: labels sorted by key, serialized as
/// k=v\x1f pairs (the separator cannot appear in our label values).
std::string SerializeLabels(const MetricLabels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '=';
    key += v;
    key += '\x1f';
  }
  return key;
}

void SortLabels(MetricLabels* labels) {
  std::sort(labels->begin(), labels->end());
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string FormatValue(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Trim to the shortest representation that round-trips exactly.
  for (int precision = 1; precision < 17; ++precision) {
    char probe[64];
    std::snprintf(probe, sizeof(probe), "%.*g", precision, value);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == value) return probe;
  }
  return buf;
}

std::string RenderLabels(const MetricLabels& labels,
                         const char* extra_key = nullptr,
                         const std::string& extra_value = std::string()) {
  if (labels.empty() && extra_key == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += EscapeLabelValue(extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

const char* MetricTypeToString(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

HistogramMetric::HistogramMetric(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void HistogramMetric::Observe(double value) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<size_t>(it - bounds_.begin())];
  sum_ += value;
  ++count_;
}

bool HistogramMetric::MergeFrom(const HistogramMetric& other) {
  if (bounds_ != other.bounds_) return false;
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  sum_ += other.sum_;
  count_ += other.count_;
  return true;
}

const std::vector<double>& HistogramMetric::DefaultLatencyBuckets() {
  // Sub-millisecond bounds resolve phase durations (lock waits, throttle
  // slices) far below the response-time scale; the tail matches long BI
  // queries. Ascending order keeps the exposition byte-stable.
  static const std::vector<double> kBuckets = {
      0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
      0.01,   0.025,   0.05,   0.1,   0.25,   0.5,
      1.0,    2.5,     5.0,    10.0,  30.0,   60.0,
      120.0,  300.0};
  return kBuckets;
}

MetricsRegistry::Family& MetricsRegistry::FamilyFor(const std::string& name,
                                                    MetricType type) {
  auto it = families_.find(name);
  if (it == families_.end()) it = families_.emplace(name, Family{}).first;
  if (!it->second.type_fixed) {
    it->second.type = type;
    it->second.type_fixed = true;
  }
  assert(it->second.type == type && "metric family re-used with a new type");
  return it->second;
}

MetricsRegistry::Series& MetricsRegistry::SeriesFor(Family& family,
                                                    MetricLabels labels) {
  SortLabels(&labels);
  std::string key = SerializeLabels(labels);
  auto it = family.series.find(key);
  if (it == family.series.end()) {
    Series series;
    series.labels = std::move(labels);
    it = family.series.emplace(std::move(key), std::move(series)).first;
  }
  return it->second;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     MetricLabels labels) {
  Series& series = SeriesFor(FamilyFor(name, MetricType::kCounter),
                             std::move(labels));
  if (!series.counter) series.counter = std::make_unique<Counter>();
  return *series.counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 MetricLabels labels) {
  Series& series =
      SeriesFor(FamilyFor(name, MetricType::kGauge), std::move(labels));
  if (!series.gauge) series.gauge = std::make_unique<Gauge>();
  return *series.gauge;
}

HistogramMetric& MetricsRegistry::GetHistogram(const std::string& name,
                                         MetricLabels labels,
                                         const std::vector<double>* bounds) {
  Series& series =
      SeriesFor(FamilyFor(name, MetricType::kHistogram), std::move(labels));
  if (!series.histogram) {
    series.histogram = std::make_unique<HistogramMetric>(
        bounds != nullptr ? *bounds : HistogramMetric::DefaultLatencyBuckets());
  }
  return *series.histogram;
}

void MetricsRegistry::SetHelp(const std::string& name, std::string help) {
  families_[name].help = std::move(help);
}

const MetricsRegistry::Series* MetricsRegistry::FindSeries(
    const std::string& name, const MetricLabels& labels) const {
  auto it = families_.find(name);
  if (it == families_.end()) return nullptr;
  MetricLabels sorted = labels;
  SortLabels(&sorted);
  auto sit = it->second.series.find(SerializeLabels(sorted));
  return sit == it->second.series.end() ? nullptr : &sit->second;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name,
                                            const MetricLabels& labels) const {
  const Series* series = FindSeries(name, labels);
  return series != nullptr ? series->counter.get() : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name,
                                        const MetricLabels& labels) const {
  const Series* series = FindSeries(name, labels);
  return series != nullptr ? series->gauge.get() : nullptr;
}

const HistogramMetric* MetricsRegistry::FindHistogram(
    const std::string& name, const MetricLabels& labels) const {
  const Series* series = FindSeries(name, labels);
  return series != nullptr ? series->histogram.get() : nullptr;
}

size_t MetricsRegistry::series_count() const {
  size_t count = 0;
  for (const auto& [name, family] : families_) count += family.series.size();
  return count;
}

std::vector<std::string> MetricsRegistry::FamilyNames() const {
  std::vector<std::string> names;
  names.reserve(families_.size());
  for (const auto& [name, family] : families_) names.push_back(name);
  return names;
}

double MetricsRegistry::FamilyValueSum(const std::string& name) const {
  auto it = families_.find(name);
  if (it == families_.end()) return 0.0;
  double sum = 0.0;
  for (const auto& [key, series] : it->second.series) {
    if (series.counter) sum += series.counter->value();
    if (series.gauge) sum += series.gauge->value();
  }
  return sum;
}

std::vector<MetricsRegistry::FamilyView> MetricsRegistry::Families() const {
  std::vector<FamilyView> views;
  views.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    FamilyView view;
    view.name = name;
    view.type = family.type;
    view.help = family.help;
    view.series.reserve(family.series.size());
    for (const auto& [key, series] : family.series) {
      SeriesView sv;
      sv.labels = &series.labels;
      sv.counter = series.counter.get();
      sv.gauge = series.gauge.get();
      sv.histogram = series.histogram.get();
      view.series.push_back(sv);
    }
    views.push_back(std::move(view));
  }
  return views;
}

void MetricsRegistry::WritePrometheus(std::ostream& out) const {
  for (const auto& [name, family] : families_) {
    if (family.series.empty()) continue;  // help registered, nothing observed
    if (!family.help.empty()) {
      out << "# HELP " << name << ' ' << family.help << '\n';
    }
    out << "# TYPE " << name << ' ' << MetricTypeToString(family.type)
        << '\n';
    for (const auto& [key, series] : family.series) {
      switch (family.type) {
        case MetricType::kCounter:
          out << name << RenderLabels(series.labels) << ' '
              << FormatValue(series.counter ? series.counter->value() : 0.0)
              << '\n';
          break;
        case MetricType::kGauge:
          out << name << RenderLabels(series.labels) << ' '
              << FormatValue(series.gauge ? series.gauge->value() : 0.0)
              << '\n';
          break;
        case MetricType::kHistogram: {
          if (!series.histogram) break;
          const HistogramMetric& h = *series.histogram;
          int64_t cumulative = 0;
          for (size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += h.bucket_counts()[i];
            out << name << "_bucket"
                << RenderLabels(series.labels, "le",
                                FormatValue(h.bounds()[i]))
                << ' ' << cumulative << '\n';
          }
          cumulative += h.bucket_counts().back();
          out << name << "_bucket"
              << RenderLabels(series.labels, "le", "+Inf") << ' '
              << cumulative << '\n';
          out << name << "_sum" << RenderLabels(series.labels) << ' '
              << FormatValue(h.sum()) << '\n';
          out << name << "_count" << RenderLabels(series.labels) << ' '
              << h.count() << '\n';
          break;
        }
      }
    }
  }
}

}  // namespace wlm
