#ifndef WLM_TELEMETRY_TRACE_H_
#define WLM_TELEMETRY_TRACE_H_

#include <cstddef>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "engine/types.h"

namespace wlm {

/// Phases of a request's life the tracer times. Span kinds on one query
/// either follow each other (queue / execute segments) or nest inside an
/// execute segment (throttle, pause, lock-wait, suspend-flush), which is
/// what lets the Chrome trace exporter emit them as stacked slices.
enum class SpanKind {
  kQueue,          // waiting in the manager's queue for dispatch
  kAdmit,          // admission decision (instantaneous in simulated time)
  kExecute,        // one engine execution segment (dispatch -> outcome)
  kThrottle,       // constant-throttle window (duty < 1)
  kPause,          // interrupt-throttle pause
  kLockWait,       // lock acquisition wait at the start of a segment
  kSuspendFlush,   // suspend requested -> state flush finished
  kSuspendedWait,  // suspended, waiting in the queue for resume
  kFault,          // fault window on the synthetic fault track (query 0)
  kOverload,       // overload episode (breaker open window, brownout
                   // level) on the synthetic overload track
  kPhase,          // latency-decomposition tile (detail = phase name);
                   // tiles partition a queue or execute segment and render
                   // on their own pid so they never straddle inner spans
};

/// Number of SpanKind values (keep in sync with the enum).
inline constexpr size_t kSpanKindCount = 11;

const char* SpanKindToString(SpanKind kind);

/// One timed phase of a query. `end < 0` means still open.
struct Span {
  SpanKind kind = SpanKind::kQueue;
  double start = 0.0;
  double end = -1.0;
  std::string detail;

  bool open() const { return end < 0.0; }
  double duration() const { return open() ? 0.0 : end - start; }
};

/// Point event on a query's timeline (kill issued, priority change, ...).
struct TraceInstant {
  double time = 0.0;
  std::string name;
  std::string detail;
};

/// Full lifecycle record of one request: every span and instant, in the
/// order they were opened. This is the per-query view the Monitor's
/// aggregate series cannot give.
struct QueryTrace {
  QueryId id = 0;
  std::string workload;
  QueryKind kind = QueryKind::kBiQuery;
  /// Display track for the Chrome trace exporter, assigned in creation
  /// (submission) order.
  int tid = 0;
  double start_time = 0.0;
  bool finished = false;
  std::vector<Span> spans;
  std::vector<TraceInstant> instants;

  /// Spans of one kind, in open order.
  std::vector<const Span*> SpansOfKind(SpanKind kind) const;
  /// Number of distinct span kinds present.
  size_t DistinctKinds() const;
  /// Sum of closed-span durations of one kind.
  double TotalOfKind(SpanKind kind) const;
};

/// Accumulates QueryTraces, bounded by `max_traces`: once the limit is
/// reached the oldest *finished* trace is evicted per new trace (live
/// queries are never dropped; their count is bounded by the MPL anyway).
class Tracer {
 public:
  explicit Tracer(size_t max_traces = 8192);

  /// Creates (or returns) the trace of `id`.
  QueryTrace& GetOrCreate(QueryId id, const std::string& workload,
                          QueryKind kind, double now);
  const QueryTrace* Find(QueryId id) const;

  void OpenSpan(QueryId id, SpanKind kind, double now,
                std::string detail = "");
  /// Closes the most recent open span of `kind`; no-op when none is open.
  /// `append_detail` is appended to the span's detail.
  void CloseSpan(QueryId id, SpanKind kind, double now,
                 const std::string& append_detail = "");
  /// Records an already-closed span (used when the duration is only known
  /// after the fact, e.g. lock waits reported with the outcome).
  void AddClosedSpan(QueryId id, SpanKind kind, double start, double end,
                     std::string detail = "");
  /// Records a batch of already-closed spans with a single trace lookup
  /// (the per-segment phase tiles would otherwise pay one tree walk
  /// each). Spans are moved from; entries with end < start are skipped.
  void AddClosedSpans(QueryId id, Span* spans, size_t count);
  void Instant(QueryId id, std::string name, double now,
               std::string detail = "");

  /// Closes the open execute span (appending `append_detail`) and closes
  /// or clamps the inner throttle/pause/lock-wait spans to `now`, so a
  /// pre-recorded pause window never outlives the segment it belongs to.
  void CloseExecutionSegment(QueryId id, double now,
                             const std::string& append_detail);

  /// Terminal bookkeeping: closes every open span at `now` and clamps any
  /// span end past `now` back to it (a pre-recorded pause window may
  /// outlive a kill), keeping the trace nestable.
  void FinishTrace(QueryId id, double now);

  /// All traces, in creation (tid) order.
  std::vector<const QueryTrace*> Traces() const;
  size_t size() const { return traces_.size(); }
  int64_t evicted() const { return evicted_; }

 private:
  size_t max_traces_;
  int next_tid_ = 1;
  int64_t evicted_ = 0;
  std::map<QueryId, QueryTrace> traces_;
  std::deque<QueryId> finished_order_;
};

}  // namespace wlm

#endif  // WLM_TELEMETRY_TRACE_H_
