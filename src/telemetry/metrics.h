#ifndef WLM_TELEMETRY_METRICS_H_
#define WLM_TELEMETRY_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace wlm {

/// Label set of one metric instance, e.g. {{"workload","bi"}}. Keys are
/// sorted (and duplicates rejected) at registration, so the same logical
/// set always maps to the same series.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

const char* MetricTypeToString(MetricType type);

/// Monotonically increasing value (completions, rejections, ...).
class Counter {
 public:
  void Increment(double delta = 1.0) {
    if (delta > 0.0) value_ += delta;
  }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Point-in-time value (queue depth, utilization, ...).
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Cumulative histogram with explicit upper bounds (+Inf implied), the
/// Prometheus histogram model: `bucket_counts()[i]` counts observations
/// <= bounds[i], the final slot counts everything.
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<double> bounds);

  void Observe(double value);

  /// Bucket-wise merge: folds `other`'s per-bucket counts, sum and count
  /// into this histogram. Returns false — and changes nothing — when the
  /// bucket bounds differ; the merge is only defined over identical
  /// bounds. Exact on the integer counts, so merging registries is
  /// associative; the float `sum` is deterministic as long as callers
  /// fold in a canonical order.
  [[nodiscard]] bool MergeFrom(const HistogramMetric& other);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size bounds()+1.
  const std::vector<int64_t>& bucket_counts() const { return counts_; }
  double sum() const { return sum_; }
  int64_t count() const { return count_; }

  /// Seconds-scale latency buckets (10ms .. 5min).
  static const std::vector<double>& DefaultLatencyBuckets();

 private:
  std::vector<double> bounds_;
  std::vector<int64_t> counts_;
  double sum_ = 0.0;
  int64_t count_ = 0;
};

/// Labeled metrics registry: families keyed by name, series keyed by
/// label set — the machine-readable superset of the Monitor's ad-hoc
/// per-tag maps. Deterministic iteration order (sorted maps) so text
/// expositions are stable across runs.
class MetricsRegistry {
 public:
  /// Returns (creating on first use) the series `name{labels}`. A family's
  /// type is fixed by its first use; mixing types for one name asserts.
  Counter& GetCounter(const std::string& name, MetricLabels labels = {});
  Gauge& GetGauge(const std::string& name, MetricLabels labels = {});
  /// `bounds` applies only when the family is created by this call;
  /// nullptr uses HistogramMetric::DefaultLatencyBuckets().
  HistogramMetric& GetHistogram(const std::string& name, MetricLabels labels = {},
                          const std::vector<double>* bounds = nullptr);

  /// Attaches `# HELP` text to a family (created lazily if absent).
  void SetHelp(const std::string& name, std::string help);

  /// Lookup without creation; nullptr when the series does not exist.
  const Counter* FindCounter(const std::string& name,
                             const MetricLabels& labels = {}) const;
  const Gauge* FindGauge(const std::string& name,
                         const MetricLabels& labels = {}) const;
  const HistogramMetric* FindHistogram(const std::string& name,
                                 const MetricLabels& labels = {}) const;

  /// Sum of every counter/gauge value in `name`'s family (0.0 when the
  /// family is missing or histogram-typed). Allocation-free — safe for
  /// per-tick sampling loops.
  double FamilyValueSum(const std::string& name) const;

  size_t family_count() const { return families_.size(); }
  size_t series_count() const;
  std::vector<std::string> FamilyNames() const;

  /// Read-only view of one series; exactly one of the three metric
  /// pointers is non-null (matching the family type) unless the series
  /// was created but never touched.
  struct SeriesView {
    const MetricLabels* labels = nullptr;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const HistogramMetric* histogram = nullptr;
  };
  /// Read-only view of one family and all of its series.
  struct FamilyView {
    std::string name;
    MetricType type = MetricType::kCounter;
    std::string help;
    std::vector<SeriesView> series;
  };
  /// Deterministic snapshot of every family (name order) and series
  /// (serialized-label order) — the read surface federation and other
  /// export layers merge from. Views borrow from the registry; they are
  /// invalidated by any Get*/SetHelp call.
  std::vector<FamilyView> Families() const;

  /// Prometheus text exposition format 0.0.4.
  void WritePrometheus(std::ostream& out) const;

 private:
  struct Series {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
    MetricLabels labels;
  };
  struct Family {
    MetricType type = MetricType::kCounter;
    /// False until the first Get*: SetHelp alone must not fix the type.
    bool type_fixed = false;
    std::string help;
    std::map<std::string, Series> series;  // keyed by serialized labels
  };

  Family& FamilyFor(const std::string& name, MetricType type);
  Series& SeriesFor(Family& family, MetricLabels labels);
  const Series* FindSeries(const std::string& name,
                           const MetricLabels& labels) const;

  std::map<std::string, Family> families_;
};

}  // namespace wlm

#endif  // WLM_TELEMETRY_METRICS_H_
