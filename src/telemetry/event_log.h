#ifndef WLM_TELEMETRY_EVENT_LOG_H_
#define WLM_TELEMETRY_EVENT_LOG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/types.h"

namespace wlm {

/// Control-plane event kinds recorded by the workload manager. This is
/// the library's analogue of the commercial products' event monitors
/// (DB2's activity and threshold-violation monitors, SQL Server's
/// Resource Governor events, Teradata's exception logging).
enum class WlmEventType {
  kSubmitted,
  kRejected,       // admission denied
  kDispatched,     // sent to the execution engine
  kCompleted,
  kKilled,
  kAborted,        // deadlock victim, not resubmitted
  kResubmitted,    // requeued after a kill/abort
  kSuspended,      // suspension finished, request back in queue
  kResumed,        // dispatched again from a suspended state
  kThrottled,      // duty-cycle change
  kPaused,         // interrupt-throttle pause
  kReprioritized,  // business priority change
  kSloViolation,   // SLO watchdog: a workload objective went unmet
  kFaultInjected,  // fault injector activated a fault window
  kFaultRecovered, // fault window ended; injected degradation reverted
  kShed,           // overload protection dropped the request
  kRetryDenied,    // resilience retry blocked (budget or deadline)
  kBreakerTripped, // circuit breaker opened for a workload
  kBreakerHalfOpen,// breaker admitting probes after cool-down
  kBreakerClosed,  // breaker closed after healthy probes
  kBrownoutStepped,// brownout shed level changed
  kShardDown,      // cluster failure detector declared a shard dead
  kShardRecovered, // dead shard heartbeating again; warm-up ramp begins
  kHedged,         // deadline-critical query duplicated to a second shard
};

/// Number of WlmEventType values (keep in sync with the enum).
inline constexpr size_t kWlmEventTypeCount = 24;

const char* WlmEventTypeToString(WlmEventType type);

/// One control-plane event.
struct WlmEvent {
  double time = 0.0;
  WlmEventType type = WlmEventType::kSubmitted;
  QueryId query = 0;
  std::string workload;
  std::string detail;
};

/// Bounded, append-only event log. Oldest events are evicted past
/// `max_events` (the total count keeps counting). Per-type and per-query
/// secondary indexes keep OfType/ForQuery/CountOf proportional to the
/// result size instead of the retained window, and InWindow binary
/// searches the (nondecreasing) event times.
class EventLog {
 public:
  explicit EventLog(size_t max_events = 1 << 16);

  void Append(WlmEvent event);
  void Clear();

  size_t size() const { return events_.size(); }
  int64_t total_appended() const { return total_; }
  const std::deque<WlmEvent>& events() const { return events_; }

  /// Events of one type, oldest first.
  std::vector<WlmEvent> OfType(WlmEventType type) const;
  /// Full history of one request, oldest first.
  std::vector<WlmEvent> ForQuery(QueryId id) const;
  /// Events with time in [begin, end).
  std::vector<WlmEvent> InWindow(double begin, double end) const;
  /// Count of events of `type` (within the retained window). O(1).
  int64_t CountOf(WlmEventType type) const;

 private:
  const WlmEvent& AtSeq(int64_t seq) const {
    return events_[static_cast<size_t>(seq - first_seq_)];
  }

  size_t max_events_;
  int64_t total_ = 0;      // sequence number of the next append
  int64_t first_seq_ = 0;  // sequence number of events_.front()
  std::deque<WlmEvent> events_;
  // Secondary indexes hold sequence numbers (append order == time order),
  // so eviction only ever pops their fronts.
  std::array<std::deque<int64_t>, kWlmEventTypeCount> by_type_;
  std::unordered_map<QueryId, std::deque<int64_t>> by_query_;
};

}  // namespace wlm

#endif  // WLM_TELEMETRY_EVENT_LOG_H_
