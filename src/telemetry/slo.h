#ifndef WLM_TELEMETRY_SLO_H_
#define WLM_TELEMETRY_SLO_H_

#include <string>
#include <vector>

#include "engine/monitor.h"

namespace wlm {

/// One service-level objective of a workload, in the forms Section 2.1
/// enumerates: average/percentile response time ("x% of queries complete in
/// y time units or less"), minimum throughput, and minimum execution
/// velocity.
struct ServiceLevelObjective {
  enum class Metric {
    kAvgResponseTime,         // mean response <= target seconds
    kPercentileResponseTime,  // `percentile`% of responses <= target
    kMinThroughput,           // completions/sec >= target
    kMinVelocity,             // mean execution velocity >= target
  };

  Metric metric = Metric::kAvgResponseTime;
  double target = 1.0;
  double percentile = 90.0;  // only for kPercentileResponseTime

  static ServiceLevelObjective AvgResponse(double seconds);
  static ServiceLevelObjective PercentileResponse(double percentile,
                                                  double seconds);
  static ServiceLevelObjective MinThroughput(double per_second);
  static ServiceLevelObjective MinVelocity(double velocity);

  std::string ToString() const;
};

/// Outcome of checking one SLO against observed statistics.
struct SloEvaluation {
  bool met = false;
  /// The observed value of the SLO's metric.
  double actual = 0.0;
  /// attainment in [0, +): actual/target oriented so >= 1.0 means met.
  double attainment = 0.0;
};

/// Evaluates `slo` against a workload's accumulated monitor statistics.
/// `interval_throughput` supplies the current completions/sec for
/// throughput objectives.
SloEvaluation EvaluateSlo(const ServiceLevelObjective& slo,
                          const TagStats& stats);

}  // namespace wlm

#endif  // WLM_TELEMETRY_SLO_H_
