#include "telemetry/trace.h"

#include <algorithm>
#include <array>

namespace wlm {

const char* SpanKindToString(SpanKind kind) {
  switch (kind) {
    case SpanKind::kQueue:
      return "queue";
    case SpanKind::kAdmit:
      return "admit";
    case SpanKind::kExecute:
      return "execute";
    case SpanKind::kThrottle:
      return "throttle";
    case SpanKind::kPause:
      return "pause";
    case SpanKind::kLockWait:
      return "lock-wait";
    case SpanKind::kSuspendFlush:
      return "suspend-flush";
    case SpanKind::kSuspendedWait:
      return "suspended";
    case SpanKind::kFault:
      return "fault";
    case SpanKind::kOverload:
      return "overload";
    case SpanKind::kPhase:
      return "phase";
  }
  return "?";
}

std::vector<const Span*> QueryTrace::SpansOfKind(SpanKind kind) const {
  std::vector<const Span*> out;
  for (const Span& span : spans) {
    if (span.kind == kind) out.push_back(&span);
  }
  return out;
}

size_t QueryTrace::DistinctKinds() const {
  std::array<bool, kSpanKindCount> seen{};
  size_t distinct = 0;
  for (const Span& span : spans) {
    auto index = static_cast<size_t>(span.kind);
    if (!seen[index]) {
      seen[index] = true;
      ++distinct;
    }
  }
  return distinct;
}

double QueryTrace::TotalOfKind(SpanKind kind) const {
  double total = 0.0;
  for (const Span& span : spans) {
    if (span.kind == kind && !span.open()) total += span.duration();
  }
  return total;
}

Tracer::Tracer(size_t max_traces) : max_traces_(max_traces) {}

QueryTrace& Tracer::GetOrCreate(QueryId id, const std::string& workload,
                                QueryKind kind, double now) {
  auto it = traces_.find(id);
  if (it != traces_.end()) return it->second;
  while (traces_.size() >= max_traces_ && !finished_order_.empty()) {
    traces_.erase(finished_order_.front());
    finished_order_.pop_front();
    ++evicted_;
  }
  QueryTrace trace;
  trace.id = id;
  trace.workload = workload;
  trace.kind = kind;
  trace.tid = next_tid_++;
  trace.start_time = now;
  // A healthy query records ~8 spans plus up to 6 phase tiles; one
  // up-front reservation spares every trace the realloc-and-move churn
  // of growing through 1/2/4/8/16.
  trace.spans.reserve(16);
  return traces_.emplace(id, std::move(trace)).first->second;
}

const QueryTrace* Tracer::Find(QueryId id) const {
  auto it = traces_.find(id);
  return it == traces_.end() ? nullptr : &it->second;
}

void Tracer::OpenSpan(QueryId id, SpanKind kind, double now,
                      std::string detail) {
  auto it = traces_.find(id);
  if (it == traces_.end()) return;
  Span span;
  span.kind = kind;
  span.start = now;
  span.detail = std::move(detail);
  it->second.spans.push_back(std::move(span));
}

void Tracer::CloseSpan(QueryId id, SpanKind kind, double now,
                       const std::string& append_detail) {
  auto it = traces_.find(id);
  if (it == traces_.end()) return;
  auto& spans = it->second.spans;
  for (auto rit = spans.rbegin(); rit != spans.rend(); ++rit) {
    if (rit->kind == kind && rit->open()) {
      rit->end = std::max(now, rit->start);
      if (!append_detail.empty()) {
        if (!rit->detail.empty()) rit->detail += ' ';
        rit->detail += append_detail;
      }
      return;
    }
  }
}

void Tracer::AddClosedSpan(QueryId id, SpanKind kind, double start,
                           double end, std::string detail) {
  auto it = traces_.find(id);
  if (it == traces_.end() || end < start) return;
  Span span;
  span.kind = kind;
  span.start = start;
  span.end = end;
  span.detail = std::move(detail);
  it->second.spans.push_back(std::move(span));
}

void Tracer::AddClosedSpans(QueryId id, Span* spans, size_t count) {
  auto it = traces_.find(id);
  if (it == traces_.end()) return;
  auto& out = it->second.spans;
  for (size_t i = 0; i < count; ++i) {
    if (spans[i].end < spans[i].start) continue;
    out.push_back(std::move(spans[i]));
  }
}

void Tracer::Instant(QueryId id, std::string name, double now,
                     std::string detail) {
  auto it = traces_.find(id);
  if (it == traces_.end()) return;
  TraceInstant instant;
  instant.time = now;
  instant.name = std::move(name);
  instant.detail = std::move(detail);
  it->second.instants.push_back(std::move(instant));
}

void Tracer::CloseExecutionSegment(QueryId id, double now,
                                   const std::string& append_detail) {
  auto it = traces_.find(id);
  if (it == traces_.end()) return;
  for (Span& span : it->second.spans) {
    if (span.kind != SpanKind::kThrottle && span.kind != SpanKind::kPause &&
        span.kind != SpanKind::kLockWait) {
      continue;
    }
    if (span.open() || span.end > now) span.end = std::max(span.start, now);
  }
  CloseSpan(id, SpanKind::kExecute, now, append_detail);
}

void Tracer::FinishTrace(QueryId id, double now) {
  auto it = traces_.find(id);
  if (it == traces_.end() || it->second.finished) return;
  for (Span& span : it->second.spans) {
    if (span.open() || span.end > now) span.end = std::max(span.start, now);
  }
  it->second.finished = true;
  finished_order_.push_back(id);
}

std::vector<const QueryTrace*> Tracer::Traces() const {
  std::vector<const QueryTrace*> out;
  out.reserve(traces_.size());
  for (const auto& [id, trace] : traces_) out.push_back(&trace);
  std::sort(out.begin(), out.end(),
            [](const QueryTrace* a, const QueryTrace* b) {
              return a->tid < b->tid;
            });
  return out;
}

}  // namespace wlm
