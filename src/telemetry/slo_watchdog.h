#ifndef WLM_TELEMETRY_SLO_WATCHDOG_H_
#define WLM_TELEMETRY_SLO_WATCHDOG_H_

#include <string>
#include <vector>

#include "engine/monitor.h"
#include "telemetry/event_log.h"
#include "telemetry/metrics.h"
#include "telemetry/slo.h"

namespace wlm {

/// Watches workload SLOs against the Monitor's per-tag statistics at every
/// sampling instant. Transitions into violation are recorded as
/// kSloViolation events in the EventLog, carrying the offending indicator
/// values, and every violated sample bumps `wlm_slo_violation_samples_total`
/// — the library's analogue of DB2's threshold-violation event monitor.
class SloWatchdog {
 public:
  /// `sink` and `metrics` may be nullptr (violations are still kept here).
  SloWatchdog(Monitor* monitor, EventLog* sink, MetricsRegistry* metrics);

  /// Replaces the watched objectives of `workload`.
  void SetSlos(const std::string& workload,
               const std::vector<ServiceLevelObjective>& slos);

  /// Evaluates every watched objective; call at each monitor sample.
  /// Objectives of a workload with no completions yet are skipped (no
  /// data, no verdict).
  void Check(const SystemIndicators& indicators);

  struct Violation {
    double time = 0.0;
    std::string workload;
    ServiceLevelObjective slo;
    SloEvaluation evaluation;
    SystemIndicators indicators;
  };
  /// Transitions into violation, oldest first (bounded alongside the log).
  const std::vector<Violation>& violations() const { return violations_; }
  size_t watched_count() const { return watched_.size(); }

 private:
  struct Watched {
    std::string workload;
    ServiceLevelObjective slo;
    size_t index = 0;  // position within the workload's SLO list
    bool in_violation = false;
  };

  Monitor* monitor_;
  EventLog* sink_;
  MetricsRegistry* metrics_;
  std::vector<Watched> watched_;
  std::vector<Violation> violations_;
};

}  // namespace wlm

#endif  // WLM_TELEMETRY_SLO_WATCHDOG_H_
