#include "telemetry/telemetry.h"

#include <algorithm>
#include <cstdio>

namespace wlm {

const char* SyntheticTrackName(SyntheticTrack track) {
  switch (track) {
    case SyntheticTrack::kFaults:
      return "faults";
    case SyntheticTrack::kOverload:
      return "overload";
    case SyntheticTrack::kCluster:
      return "cluster";
  }
  return "?";
}

Telemetry::Telemetry(Simulation* sim, Monitor* monitor, EventLog* event_log,
                     TelemetryOptions options)
    : sim_(sim),
      monitor_(monitor),
      event_log_(event_log),
      enabled_(options.enabled),
      profiling_(options.profiling),
      flight_recorder_enabled_(options.flight_recorder),
      tracer_(options.max_traces),
      watchdog_(monitor, event_log, &metrics_),
      profiles_(options.max_profiles),
      recorder_(options.flight_recorder_options) {
  if (!enabled_) return;
  metrics_.SetHelp("wlm_requests_submitted_total",
                   "Requests entering the workload manager");
  metrics_.SetHelp("wlm_requests_rejected_total",
                   "Requests refused by an admission gate");
  metrics_.SetHelp("wlm_requests_completed_total",
                   "Requests finishing successfully");
  metrics_.SetHelp("wlm_requests_killed_total",
                   "Requests killed by execution control");
  metrics_.SetHelp("wlm_requests_aborted_total",
                   "Deadlock victims not resubmitted");
  metrics_.SetHelp("wlm_requests_resubmitted_total",
                   "Automatic requeues after a kill or deadlock");
  metrics_.SetHelp("wlm_requests_suspended_total",
                   "Suspensions completing their state flush");
  metrics_.SetHelp("wlm_dispatches_total",
                   "Dispatches into the engine (resumed=true for resumes)");
  metrics_.SetHelp("wlm_dispatch_gated_total",
                   "Dispatch attempts held back by an admission gate");
  metrics_.SetHelp("wlm_throttle_changes_total", "Duty-cycle changes");
  metrics_.SetHelp("wlm_pauses_total", "Interrupt-throttle pauses");
  metrics_.SetHelp("wlm_reprioritizations_total",
                   "Business-priority changes");
  metrics_.SetHelp("wlm_response_seconds",
                   "Arrival-to-finish response time");
  metrics_.SetHelp("wlm_queue_wait_seconds",
                   "Wait before the first dispatch");
  metrics_.SetHelp("wlm_lock_wait_seconds",
                   "Lock acquisition wait per execution segment");
  metrics_.SetHelp("wlm_queue_depth", "Requests waiting for dispatch");
  metrics_.SetHelp("wlm_running", "Requests executing in the engine");
  metrics_.SetHelp("wlm_cpu_utilization", "Engine CPU utilization");
  metrics_.SetHelp("wlm_io_utilization", "Engine I/O utilization");
  metrics_.SetHelp("wlm_memory_utilization", "Work-memory utilization");
  metrics_.SetHelp("wlm_conflict_ratio", "Lock conflict ratio");
  metrics_.SetHelp("wlm_throughput", "Completions per second");
  metrics_.SetHelp("wlm_slo_violations_total",
                   "Transitions of a workload SLO into violation");
  metrics_.SetHelp("wlm_slo_violation_samples_total",
                   "Monitor samples observed with the SLO violated");
  metrics_.SetHelp("wlm_slo_attainment",
                   "actual/target, >= 1 means the objective is met");
  metrics_.SetHelp("wlm_faults_injected_total",
                   "Fault windows activated, by fault kind");
  metrics_.SetHelp("wlm_faults_recovered_total",
                   "Fault windows ended with degradation reverted");
  metrics_.SetHelp("wlm_faults_active", "Fault windows currently open");
  metrics_.SetHelp("wlm_faults_aborts_total",
                   "Running requests spontaneously aborted by a fault");
  metrics_.SetHelp("wlm_faults_retries_total",
                   "Fault-abort retries scheduled with backoff");
  metrics_.SetHelp("wlm_faults_degraded",
                   "1 while graceful degradation is in force");
  metrics_.SetHelp("wlm_overload_shed_total",
                   "Requests dropped by overload protection, by reason");
  metrics_.SetHelp("wlm_overload_retry_denied_total",
                   "Resilience retries blocked by budget or deadline");
  metrics_.SetHelp("wlm_overload_breaker_state",
                   "Circuit breaker state (0 closed, 1 half-open, 2 open)");
  metrics_.SetHelp("wlm_overload_breaker_transitions_total",
                   "Circuit breaker state transitions, by target state");
  metrics_.SetHelp("wlm_overload_brownout_level",
                   "Current brownout shed level (0 = all classes served)");
  metrics_.SetHelp("wlm_overload_brownout_steps_total",
                   "Brownout shed-level changes");
  metrics_.SetHelp("wlm_overload_queue_lifo",
                   "1 while the wait queue serves newest-first");
  metrics_.SetHelp("wlm_phase_seconds_total",
                   "Wall time by latency-decomposition phase and service "
                   "class (workload), accrued at terminal outcomes");
  metrics_.SetHelp("wlm_escalations_total",
                   "Timeout-escalation ladder actions, by rung");
  metrics_.SetHelp("wlm_flight_recorder_dumps_total",
                   "Post-mortems captured by the flight recorder");
}

double Telemetry::Now() const { return sim_->Now(); }

void Telemetry::WatchSlos(const std::string& workload,
                          const std::vector<ServiceLevelObjective>& slos) {
  if (!enabled_) return;
  watchdog_.SetSlos(workload, slos);
}

void Telemetry::OnSubmit(QueryId id, const std::string& workload,
                         QueryKind kind, uint64_t journey) {
  if (!enabled_) return;
  tracer_.GetOrCreate(id, workload, kind, Now());
  if (profiling_) profiles_.Begin(id, workload, kind, Now(), journey);
  metrics_.GetCounter("wlm_requests_submitted_total", {{"workload", workload}})
      .Increment();
}

void Telemetry::OnAdmitted(QueryId id, const std::string& workload) {
  if (!enabled_) return;
  (void)workload;
  const double now = Now();
  tracer_.AddClosedSpan(id, SpanKind::kAdmit, now, now, "admitted");
  tracer_.OpenSpan(id, SpanKind::kQueue, now);
  if (profiling_) profiles_.OpenQueueWait(id, now);
}

void Telemetry::OnRejected(QueryId id, const std::string& workload,
                           const std::string& gate,
                           const std::string& reason) {
  if (!enabled_) return;
  const double now = Now();
  tracer_.AddClosedSpan(id, SpanKind::kAdmit, now, now,
                        "rejected gate=" + gate + " reason=" + reason);
  tracer_.FinishTrace(id, now);
  FinalizeProfile(id, "rejected", reason + " (gate=" + gate + ")");
  metrics_
      .GetCounter("wlm_requests_rejected_total",
                  {{"workload", workload}, {"gate", gate}})
      .Increment();
}

void Telemetry::OnRequeued(QueryId id, const std::string& workload) {
  if (!enabled_) return;
  const double now = Now();
  // A kill/deadlock resubmission interrupts the running segment.
  tracer_.CloseExecutionSegment(id, now, "outcome=resubmitted");
  tracer_.OpenSpan(id, SpanKind::kQueue, now, "resubmit");
  if (profiling_) {
    // A fault retry arrives here from backoff limbo: tile that wait.
    auto [phase, start] = profiles_.OpenSegment(id);
    if (phase >= 0 && now > start) {
      tracer_.AddClosedSpan(id, SpanKind::kPhase, start, now,
                            PhaseToString(static_cast<Phase>(phase)));
    }
    profiles_.CountRequeue(id);
    profiles_.OpenQueueWait(id, now);
  }
  metrics_
      .GetCounter("wlm_requests_resubmitted_total", {{"workload", workload}})
      .Increment();
}

void Telemetry::OnDispatchGated(QueryId id, const std::string& workload,
                                const std::string& gate) {
  if (!enabled_) return;
  (void)id;
  metrics_
      .GetCounter("wlm_dispatch_gated_total",
                  {{"workload", workload}, {"gate", gate}})
      .Increment();
}

void Telemetry::OnDispatch(QueryId id, const std::string& workload,
                           bool resumed) {
  if (!enabled_) return;
  const double now = Now();
  tracer_.CloseSpan(id, resumed ? SpanKind::kSuspendedWait : SpanKind::kQueue,
                    now);
  tracer_.OpenSpan(id, SpanKind::kExecute, now, resumed ? "resumed" : "");
  if (profiling_) {
    // Tile the wait that just ended (admission/overload queue or
    // suspended wait), then settle it into the profile.
    auto [phase, start] = profiles_.OpenSegment(id);
    if (phase >= 0 && now > start) {
      tracer_.AddClosedSpan(id, SpanKind::kPhase, start, now,
                            PhaseToString(static_cast<Phase>(phase)));
    }
    profiles_.MarkDispatched(id, now);
  }
  metrics_
      .GetCounter("wlm_dispatches_total",
                  {{"workload", workload},
                   {"resumed", resumed ? "true" : "false"}})
      .Increment();
}

void Telemetry::OnSuspendStart(QueryId id, const std::string& workload,
                               const char* strategy) {
  if (!enabled_) return;
  (void)workload;
  tracer_.OpenSpan(id, SpanKind::kSuspendFlush, Now(),
                   std::string("strategy=") + strategy);
}

void Telemetry::OnSuspended(QueryId id, const std::string& workload) {
  if (!enabled_) return;
  const double now = Now();
  tracer_.CloseSpan(id, SpanKind::kSuspendFlush, now);
  tracer_.CloseExecutionSegment(id, now, "outcome=suspended");
  tracer_.OpenSpan(id, SpanKind::kSuspendedWait, now);
  if (profiling_) {
    profiles_.CountSuspend(id);
    profiles_.OpenWait(id, Phase::kSuspendedWait, now);
  }
  metrics_
      .GetCounter("wlm_requests_suspended_total", {{"workload", workload}})
      .Increment();
}

void Telemetry::OnRunSegment(QueryId id, const std::string& workload,
                             const QueryOutcome& outcome) {
  if (!enabled_ || !profiling_) return;
  (void)workload;
  profiles_.AccumulateSegment(id, outcome);
  AddPhaseTiles(id, outcome.dispatch_time, outcome.phases);
}

void Telemetry::OnTerminal(QueryId id, const std::string& workload,
                           const char* outcome_name, double response_seconds,
                           double queue_wait_seconds,
                           const QueryOutcome& outcome) {
  if (!enabled_) return;
  const double now = Now();
  if (outcome.lock_wait_seconds > 0.0) {
    tracer_.AddClosedSpan(
        id, SpanKind::kLockWait, outcome.dispatch_time,
        std::min(outcome.dispatch_time + outcome.lock_wait_seconds, now));
    metrics_
        .GetHistogram("wlm_lock_wait_seconds", {{"workload", workload}})
        .Observe(outcome.lock_wait_seconds);
  }
  char detail[160];
  std::snprintf(detail, sizeof(detail),
                "outcome=%s cpu=%.3f io=%.0f spill=%.2f buffer_hit=%.2f",
                outcome_name, outcome.cpu_used, outcome.io_used,
                outcome.spill_factor, outcome.buffer_hit_ratio);
  tracer_.CloseExecutionSegment(id, now, detail);
  tracer_.FinishTrace(id, now);
  FinalizeProfile(id, outcome_name, "");

  metrics_
      .GetCounter(std::string("wlm_requests_") + outcome_name + "_total",
                  {{"workload", workload}})
      .Increment();
  metrics_.GetHistogram("wlm_response_seconds", {{"workload", workload}})
      .Observe(response_seconds);
  metrics_.GetHistogram("wlm_queue_wait_seconds", {{"workload", workload}})
      .Observe(queue_wait_seconds);
}

void Telemetry::OnThrottle(QueryId id, const std::string& workload,
                           double duty) {
  if (!enabled_) return;
  const double now = Now();
  char detail[48];
  std::snprintf(detail, sizeof(detail), "duty=%.3f", duty);
  // A duty change ends any current window; a new sub-1.0 duty opens one.
  tracer_.CloseSpan(id, SpanKind::kThrottle, now);
  if (duty < 1.0) {
    tracer_.OpenSpan(id, SpanKind::kThrottle, now, detail);
  }
  tracer_.Instant(id, "throttle", now, detail);
  metrics_
      .GetCounter("wlm_throttle_changes_total", {{"workload", workload}})
      .Increment();
}

void Telemetry::OnPause(QueryId id, const std::string& workload,
                        double seconds) {
  if (!enabled_) return;
  const double now = Now();
  char detail[48];
  std::snprintf(detail, sizeof(detail), "seconds=%.3f", seconds);
  // Recorded closed up-front; segment close clamps it if the query leaves
  // the engine before the pause elapses.
  tracer_.AddClosedSpan(id, SpanKind::kPause, now, now + seconds, detail);
  metrics_.GetCounter("wlm_pauses_total", {{"workload", workload}})
      .Increment();
}

void Telemetry::OnReprioritize(QueryId id, const std::string& workload,
                               const char* priority) {
  if (!enabled_) return;
  tracer_.Instant(id, "reprioritize", Now(),
                  std::string("priority=") + priority);
  metrics_
      .GetCounter("wlm_reprioritizations_total", {{"workload", workload}})
      .Increment();
}

void Telemetry::OnFaultBegin(const std::string& kind,
                             const std::string& detail) {
  if (!enabled_) return;
  const double now = Now();
  tracer_.GetOrCreate(SyntheticTrackId(SyntheticTrack::kFaults),
                      SyntheticTrackName(SyntheticTrack::kFaults),
                      QueryKind::kUtility, now);
  tracer_.Instant(SyntheticTrackId(SyntheticTrack::kFaults), "fault_begin", now, kind + " " + detail);
  metrics_.GetCounter("wlm_faults_injected_total", {{"kind", kind}})
      .Increment();
  metrics_.GetGauge("wlm_faults_active").Add(1.0);
  ++active_faults_;
  TriggerFlightRecorder("fault:" + kind);
}

void Telemetry::OnFaultEnd(const std::string& kind, double started_at) {
  if (!enabled_) return;
  const double now = Now();
  tracer_.GetOrCreate(SyntheticTrackId(SyntheticTrack::kFaults),
                      SyntheticTrackName(SyntheticTrack::kFaults),
                      QueryKind::kUtility, now);
  tracer_.AddClosedSpan(SyntheticTrackId(SyntheticTrack::kFaults), SpanKind::kFault, started_at, now,
                        kind);
  tracer_.Instant(SyntheticTrackId(SyntheticTrack::kFaults), "fault_end", now, kind);
  metrics_.GetCounter("wlm_faults_recovered_total", {{"kind", kind}})
      .Increment();
  metrics_.GetGauge("wlm_faults_active").Add(-1.0);
  if (active_faults_ > 0) --active_faults_;
}

void Telemetry::OnFaultAbort(QueryId id, const std::string& workload,
                             const std::string& reason) {
  if (!enabled_) return;
  const double now = Now();
  tracer_.Instant(id, "fault_abort", now, reason);
  tracer_.CloseExecutionSegment(id, now, "outcome=fault_abort");
  metrics_.GetCounter("wlm_faults_aborts_total", {{"workload", workload}})
      .Increment();
}

void Telemetry::OnFaultRetry(QueryId id, const std::string& workload,
                             double delay_seconds) {
  if (!enabled_) return;
  char detail[48];
  std::snprintf(detail, sizeof(detail), "backoff=%.3fs", delay_seconds);
  tracer_.Instant(id, "fault_retry", Now(), detail);
  if (profiling_) profiles_.OpenWait(id, Phase::kRetryBackoff, Now());
  metrics_.GetCounter("wlm_faults_retries_total", {{"workload", workload}})
      .Increment();
}

void Telemetry::SetDegraded(bool degraded) {
  if (!enabled_) return;
  degraded_ = degraded;
  metrics_.GetGauge("wlm_faults_degraded").Set(degraded ? 1.0 : 0.0);
}

void Telemetry::OnShed(QueryId id, const std::string& workload,
                       const std::string& reason) {
  if (!enabled_) return;
  const double now = Now();
  tracer_.CloseSpan(id, SpanKind::kQueue, now, " shed=" + reason);
  tracer_.Instant(id, "shed", now, reason);
  tracer_.FinishTrace(id, now);
  if (profiling_) {
    auto [phase, start] = profiles_.OpenSegment(id);
    if (phase >= 0 && now > start) {
      tracer_.AddClosedSpan(id, SpanKind::kPhase, start, now,
                            PhaseToString(static_cast<Phase>(phase)));
    }
  }
  FinalizeProfile(id, "shed", reason);
  metrics_
      .GetCounter("wlm_overload_shed_total",
                  {{"workload", workload}, {"reason", reason}})
      .Increment();
}

void Telemetry::OnRetryDenied(QueryId id, const std::string& workload,
                              const std::string& reason) {
  if (!enabled_) return;
  tracer_.Instant(id, "retry_denied", Now(), reason);
  metrics_
      .GetCounter("wlm_overload_retry_denied_total",
                  {{"workload", workload}, {"reason", reason}})
      .Increment();
}

void Telemetry::OnBreakerTransition(const std::string& workload, int state,
                                    const char* state_name, double opened_at,
                                    const std::string& detail) {
  if (!enabled_) return;
  const double now = Now();
  tracer_.GetOrCreate(SyntheticTrackId(SyntheticTrack::kOverload),
                      SyntheticTrackName(SyntheticTrack::kOverload),
                      QueryKind::kUtility, now);
  tracer_.Instant(SyntheticTrackId(SyntheticTrack::kOverload), std::string("breaker_") + state_name, now,
                  workload + " " + detail);
  if (opened_at >= 0.0) {
    // Leaving the open state: record the whole open window as one span.
    tracer_.AddClosedSpan(SyntheticTrackId(SyntheticTrack::kOverload), SpanKind::kOverload, opened_at,
                          now, "breaker_open " + workload);
  }
  metrics_.GetGauge("wlm_overload_breaker_state", {{"workload", workload}})
      .Set(static_cast<double>(state));
  metrics_
      .GetCounter("wlm_overload_breaker_transitions_total",
                  {{"workload", workload}, {"to", state_name}})
      .Increment();
  breaker_states_[workload] = state;
  if (std::string(state_name) == "open") {
    TriggerFlightRecorder("breaker_open:" + workload);
  }
}

void Telemetry::OnBrownoutStep(int level, double entered_at,
                               const std::string& detail) {
  if (!enabled_) return;
  const double now = Now();
  tracer_.GetOrCreate(SyntheticTrackId(SyntheticTrack::kOverload),
                      SyntheticTrackName(SyntheticTrack::kOverload),
                      QueryKind::kUtility, now);
  char name[48];
  std::snprintf(name, sizeof(name), "brownout_level_%d", level);
  tracer_.Instant(SyntheticTrackId(SyntheticTrack::kOverload), name, now, detail);
  if (level == 0 && entered_at >= 0.0) {
    // Episode over: record the whole brownout window as one span.
    tracer_.AddClosedSpan(SyntheticTrackId(SyntheticTrack::kOverload), SpanKind::kOverload, entered_at,
                          now, "brownout");
  }
  metrics_.GetGauge("wlm_overload_brownout_level")
      .Set(static_cast<double>(level));
  metrics_.GetCounter("wlm_overload_brownout_steps_total").Increment();
  brownout_level_ = level;
}

void Telemetry::OnQueueDiscipline(bool lifo) {
  if (!enabled_) return;
  const double now = Now();
  tracer_.GetOrCreate(SyntheticTrackId(SyntheticTrack::kOverload),
                      SyntheticTrackName(SyntheticTrack::kOverload),
                      QueryKind::kUtility, now);
  tracer_.Instant(SyntheticTrackId(SyntheticTrack::kOverload), lifo ? "queue_lifo" : "queue_fifo", now);
  metrics_.GetGauge("wlm_overload_queue_lifo").Set(lifo ? 1.0 : 0.0);
  queue_lifo_ = lifo;
  if (profiling_) profiles_.SetQueueDiscipline(lifo, now);
}

void Telemetry::OnMonitorSample(const SystemIndicators& indicators,
                                size_t queue_depth, size_t running_count) {
  if (!enabled_) return;
  metrics_.GetGauge("wlm_cpu_utilization").Set(indicators.cpu_utilization);
  metrics_.GetGauge("wlm_io_utilization").Set(indicators.io_utilization);
  metrics_.GetGauge("wlm_memory_utilization")
      .Set(indicators.memory_utilization);
  metrics_.GetGauge("wlm_conflict_ratio").Set(indicators.conflict_ratio);
  metrics_.GetGauge("wlm_throughput").Set(indicators.throughput);
  metrics_.GetGauge("wlm_queue_depth").Set(static_cast<double>(queue_depth));
  metrics_.GetGauge("wlm_running").Set(static_cast<double>(running_count));
  for (const auto& [tag, stats] : monitor_->all_tag_stats()) {
    metrics_.GetGauge("wlm_throughput", {{"workload", tag}})
        .Set(stats.last_interval_throughput);
  }
  last_indicators_ = indicators;
  last_queue_depth_ = queue_depth;
  last_running_ = running_count;
  watchdog_.Check(indicators);
  // New watchdog violations arm the black box: dump while the anomaly is
  // fresh rather than asking questions after the run.
  const auto& violations = watchdog_.violations();
  if (violations.size() > violations_seen_) {
    TriggerFlightRecorder("slo_violation:" + violations.back().workload);
    violations_seen_ = violations.size();
  }
}

void Telemetry::SetWorkloadOccupancy(const std::string& workload, int queued,
                                     int running) {
  if (!enabled_) return;
  metrics_.GetGauge("wlm_queue_depth", {{"workload", workload}})
      .Set(static_cast<double>(queued));
  metrics_.GetGauge("wlm_running", {{"workload", workload}})
      .Set(static_cast<double>(running));
}

void Telemetry::OnEscalation(QueryId id, const std::string& workload,
                             const char* rung) {
  if (!enabled_) return;
  tracer_.Instant(id, "escalate", Now(), std::string("rung=") + rung);
  metrics_
      .GetCounter("wlm_escalations_total",
                  {{"workload", workload}, {"rung", rung}})
      .Increment();
}

ControllerStateSnapshot Telemetry::ControllerState() const {
  ControllerStateSnapshot state;
  state.time = Now();
  state.degraded = degraded_;
  state.active_faults = active_faults_;
  state.brownout_level = brownout_level_;
  state.queue_lifo = queue_lifo_;
  state.queue_depth = last_queue_depth_;
  state.running = last_running_;
  state.cpu_utilization = last_indicators_.cpu_utilization;
  state.io_utilization = last_indicators_.io_utilization;
  state.memory_utilization = last_indicators_.memory_utilization;
  state.breaker_states = breaker_states_;
  return state;
}

void Telemetry::FinalizeProfile(QueryId id, const std::string& outcome,
                                const std::string& detail) {
  if (!profiling_) return;
  const QueryProfile* profile = profiles_.Finalize(id, Now(), outcome, detail);
  if (profile == nullptr) return;
  auto [slot, inserted] = phase_counters_.try_emplace(profile->workload);
  if (inserted) slot->second.fill(nullptr);
  for (size_t i = 0; i < kPhaseCount; ++i) {
    if (profile->phase_seconds[i] <= 0.0) continue;
    if (slot->second[i] == nullptr) {
      slot->second[i] = &metrics_.GetCounter(
          "wlm_phase_seconds_total",
          {{"phase", PhaseToString(static_cast<Phase>(i))},
           {"workload", profile->workload}});
    }
    slot->second[i]->Increment(profile->phase_seconds[i]);
  }
  if (flight_recorder_enabled_) recorder_.RecordProfile(*profile);
}

void Telemetry::AddPhaseTiles(QueryId id, double start,
                              const ExecPhaseTotals& phases) {
  // Sequential layout of the segment's decomposition: tiles partition
  // [dispatch, finish) exactly because the buckets sum to the segment's
  // wall time. Ordering is presentational (true interleaving is finer).
  const std::pair<Phase, double> tiles[] = {
      {Phase::kLockWait, phases.lock_wait_seconds},
      {Phase::kCpuRun, phases.cpu_run_seconds},
      {Phase::kIoStall, phases.io_stall_seconds},
      {Phase::kMemoryStall, phases.memory_stall_seconds},
      {Phase::kThrottled, phases.throttled_seconds},
      {Phase::kSuspendFlush, phases.suspend_flush_seconds},
  };
  Span batch[std::size(tiles)];
  size_t count = 0;
  double cursor = start;
  for (const auto& [phase, seconds] : tiles) {
    if (seconds <= 0.0) continue;
    Span& span = batch[count++];
    span.kind = SpanKind::kPhase;
    span.start = cursor;
    span.end = cursor + seconds;
    span.detail = PhaseToString(phase);
    cursor += seconds;
  }
  if (count > 0) tracer_.AddClosedSpans(id, batch, count);
}

void Telemetry::TriggerFlightRecorder(const std::string& reason) {
  if (!flight_recorder_enabled_ || !profiling_) return;
  size_t before = recorder_.postmortems().size();
  recorder_.Trigger(reason, ControllerState(), event_log_);
  if (recorder_.postmortems().size() > before) {
    metrics_.GetCounter("wlm_flight_recorder_dumps_total").Increment();
  }
}

}  // namespace wlm
