#include "telemetry/profile.h"

#include <algorithm>
#include <cstdio>

namespace wlm {

const char* PhaseToString(Phase phase) {
  switch (phase) {
    case Phase::kAdmissionQueue:
      return "admission_queue";
    case Phase::kOverloadQueue:
      return "overload_queue";
    case Phase::kLockWait:
      return "lock_wait";
    case Phase::kCpuRun:
      return "cpu_run";
    case Phase::kIoStall:
      return "io_stall";
    case Phase::kMemoryStall:
      return "memory_stall";
    case Phase::kThrottled:
      return "throttled";
    case Phase::kSuspendFlush:
      return "suspend_flush";
    case Phase::kSuspendedWait:
      return "suspended_wait";
    case Phase::kRetryBackoff:
      return "retry_backoff";
  }
  return "?";
}

double QueryProfile::PhaseSum() const {
  double sum = 0.0;
  for (double seconds : phase_seconds) sum += seconds;
  return sum;
}

double QueryProfile::PhaseShare(Phase phase) const {
  double sum = PhaseSum();
  return sum > 0.0 ? seconds(phase) / sum : 0.0;
}

Phase QueryProfile::DominantPhase() const {
  size_t best = 0;
  for (size_t i = 1; i < kPhaseCount; ++i) {
    if (phase_seconds[i] > phase_seconds[best]) best = i;
  }
  return static_cast<Phase>(best);
}

std::string ExplainOutcome(const QueryProfile& profile) {
  if (!profile.terminal()) return "live";
  if (profile.outcome == "rejected" || profile.outcome == "shed") {
    std::string out = profile.outcome + ": ";
    out += profile.detail.empty() ? "admission" : profile.detail;
    return out;
  }
  Phase dominant = profile.DominantPhase();
  double share = profile.PhaseShare(dominant);
  char suffix[64];
  std::snprintf(suffix, sizeof(suffix), "%.0f%% %s", share * 100.0,
                PhaseToString(dominant));
  if (profile.outcome == "completed") {
    const char* verdict =
        (dominant == Phase::kCpuRun || dominant == Phase::kIoStall)
            ? "healthy"
            : "slow";
    return std::string(verdict) + ": " + suffix;
  }
  // killed / aborted: lead with the outcome, keep the decomposition.
  std::string out = profile.outcome + ": " + suffix;
  if (!profile.detail.empty()) out += " (" + profile.detail + ")";
  return out;
}

ProfileStore::ProfileStore(size_t max_profiles)
    : max_profiles_(max_profiles) {
  // The store's population is bounded, so pre-sizing the hash table once
  // avoids every rehash (each of which would move all live entries).
  profiles_.reserve(max_profiles_);
}

ProfileStore::Entry* ProfileStore::FindEntry(QueryId id) {
  auto it = profiles_.find(id);
  return it == profiles_.end() ? nullptr : &it->second;
}

void ProfileStore::Begin(QueryId id, const std::string& workload,
                         QueryKind kind, double now, uint64_t journey) {
  if (profiles_.count(id) > 0) return;
  while (profiles_.size() >= max_profiles_ && !finished_order_.empty()) {
    profiles_.erase(finished_order_.front());
    finished_order_.pop_front();
    ++evicted_;
  }
  Entry entry;
  entry.profile.id = id;
  entry.profile.journey = journey;
  entry.profile.workload = workload;
  entry.profile.kind = kind;
  entry.profile.arrival_time = now;
  entry.order = next_order_++;
  profiles_.emplace(id, std::move(entry));
}

void ProfileStore::OpenWait(QueryId id, Phase phase, double now) {
  Entry* entry = FindEntry(id);
  if (entry == nullptr) return;
  SettleEntry(entry, now);
  entry->open_phase = static_cast<int>(phase);
  entry->open_start = now;
}

void ProfileStore::OpenQueueWait(QueryId id, double now) {
  OpenWait(id, queue_lifo_ ? Phase::kOverloadQueue : Phase::kAdmissionQueue,
           now);
}

void ProfileStore::Settle(QueryId id, double now) {
  SettleEntry(FindEntry(id), now);
}

void ProfileStore::SettleEntry(Entry* entry, double now) {
  if (entry == nullptr || entry->open_phase < 0) return;
  double waited = std::max(0.0, now - entry->open_start);
  entry->profile.phase_seconds[static_cast<size_t>(entry->open_phase)] +=
      waited;
  entry->open_phase = -1;
}

void ProfileStore::SetQueueDiscipline(bool lifo, double now) {
  if (lifo == queue_lifo_) return;
  queue_lifo_ = lifo;
  const int admission = static_cast<int>(Phase::kAdmissionQueue);
  const int overload = static_cast<int>(Phase::kOverloadQueue);
  for (auto& [id, entry] : profiles_) {
    if (entry.open_phase != admission && entry.open_phase != overload) {
      continue;
    }
    SettleEntry(&entry, now);
    entry.open_phase = lifo ? overload : admission;
    entry.open_start = now;
  }
}

void ProfileStore::AccumulateSegment(QueryId id, const QueryOutcome& outcome) {
  Entry* entry = FindEntry(id);
  if (entry == nullptr) return;
  QueryProfile& p = entry->profile;
  const ExecPhaseTotals& phases = outcome.phases;
  auto add = [&p](Phase phase, double seconds) {
    p.phase_seconds[static_cast<size_t>(phase)] += seconds;
  };
  add(Phase::kLockWait, phases.lock_wait_seconds);
  add(Phase::kCpuRun, phases.cpu_run_seconds);
  add(Phase::kIoStall, phases.io_stall_seconds);
  add(Phase::kMemoryStall, phases.memory_stall_seconds);
  add(Phase::kThrottled, phases.throttled_seconds);
  add(Phase::kSuspendFlush, phases.suspend_flush_seconds);
  p.resources.cpu_seconds += outcome.cpu_used;
  p.resources.io_ops += outcome.io_used;
  p.resources.peak_memory_mb =
      std::max(p.resources.peak_memory_mb, outcome.memory_granted_mb);
  p.resources.lock_hold_seconds += outcome.lock_hold_seconds;
  p.resources.spill_factor =
      std::max(p.resources.spill_factor, outcome.spill_factor);
  p.resources.buffer_hit_ratio =
      std::max(p.resources.buffer_hit_ratio, outcome.buffer_hit_ratio);
  ++p.run_segments;
}

void ProfileStore::MarkDispatched(QueryId id, double now) {
  Entry* entry = FindEntry(id);
  if (entry == nullptr) return;
  SettleEntry(entry, now);
  if (entry->profile.first_dispatch_time < 0.0) {
    entry->profile.first_dispatch_time = now;
  }
}

void ProfileStore::CountRequeue(QueryId id) {
  Entry* entry = FindEntry(id);
  if (entry != nullptr) ++entry->profile.requeue_count;
}

void ProfileStore::CountSuspend(QueryId id) {
  Entry* entry = FindEntry(id);
  if (entry != nullptr) ++entry->profile.suspend_count;
}

const QueryProfile* ProfileStore::Finalize(QueryId id, double now,
                                           const std::string& outcome,
                                           const std::string& detail) {
  Entry* entry = FindEntry(id);
  if (entry == nullptr || entry->profile.terminal()) return nullptr;
  SettleEntry(entry, now);
  QueryProfile& p = entry->profile;
  p.finish_time = now;
  p.outcome = outcome;
  p.detail = detail;
  finished_order_.push_back(id);

  ClassProfileRollup& rollup = rollups_[p.workload];
  ++rollup.count;
  for (size_t i = 0; i < kPhaseCount; ++i) {
    rollup.phase_seconds[i] += p.phase_seconds[i];
  }
  rollup.resources.cpu_seconds += p.resources.cpu_seconds;
  rollup.resources.io_ops += p.resources.io_ops;
  rollup.resources.peak_memory_mb = std::max(
      rollup.resources.peak_memory_mb, p.resources.peak_memory_mb);
  rollup.resources.lock_hold_seconds += p.resources.lock_hold_seconds;
  rollup.resources.spill_factor =
      std::max(rollup.resources.spill_factor, p.resources.spill_factor);
  rollup.resources.buffer_hit_ratio =
      std::max(rollup.resources.buffer_hit_ratio, p.resources.buffer_hit_ratio);
  return &p;
}

const QueryProfile* ProfileStore::Find(QueryId id) const {
  auto it = profiles_.find(id);
  return it == profiles_.end() ? nullptr : &it->second.profile;
}

std::pair<int, double> ProfileStore::OpenSegment(QueryId id) const {
  auto it = profiles_.find(id);
  if (it == profiles_.end() || it->second.open_phase < 0) return {-1, 0.0};
  return {it->second.open_phase, it->second.open_start};
}

std::vector<const QueryProfile*> ProfileStore::Profiles() const {
  std::vector<std::pair<int64_t, const QueryProfile*>> ordered;
  ordered.reserve(profiles_.size());
  for (const auto& [id, entry] : profiles_) {
    ordered.emplace_back(entry.order, &entry.profile);
  }
  std::sort(ordered.begin(), ordered.end());
  std::vector<const QueryProfile*> out;
  out.reserve(ordered.size());
  for (const auto& [order, profile] : ordered) out.push_back(profile);
  return out;
}

}  // namespace wlm
