#include "telemetry/exporters.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

namespace wlm {

namespace {

/// Simulated seconds -> integer trace microseconds.
long long ToMicros(double seconds) {
  return std::llround(seconds * 1e6);
}

void WriteEvent(std::ostream& out, bool& first, const std::string& json) {
  if (!first) out << ",\n";
  first = false;
  out << json;
}

std::string FormatDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

std::string JsonEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteChromeTrace(const Tracer& tracer, std::ostream& out,
                      const Monitor* monitor) {
  out << "[\n";
  bool first = true;
  WriteEvent(out, first,
             R"({"name":"process_name","ph":"M","pid":1,"tid":0,)"
             R"("args":{"name":"wlm"}})");
  WriteEvent(out, first,
             R"({"name":"process_name","ph":"M","pid":2,"tid":0,)"
             R"("args":{"name":"wlm phases"}})");

  for (const QueryTrace* trace : tracer.Traces()) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  R"({"name":"thread_name","ph":"M","pid":1,"tid":%d,)"
                  R"("args":{"name":"q%llu [%s]"}})",
                  trace->tid, static_cast<unsigned long long>(trace->id),
                  JsonEscape(trace->workload).c_str());
    WriteEvent(out, first, buf);

    for (const Span& span : trace->spans) {
      const double end = span.open() ? span.start : span.end;
      // Phase tiles partition a segment; they can straddle throttle/pause
      // windows on the query's own track, so they render as a parallel
      // "phase lane" process where each query still keeps its tid.
      const bool phase = span.kind == SpanKind::kPhase;
      std::string json = "{\"name\":\"";
      if (phase && !span.detail.empty()) {
        json += JsonEscape(span.detail);
      } else {
        json += SpanKindToString(span.kind);
      }
      json += "\",\"cat\":\"";
      json += JsonEscape(trace->workload);
      json += "\",\"ph\":\"X\",\"ts\":";
      json += std::to_string(ToMicros(span.start));
      json += ",\"dur\":";
      json += std::to_string(
          std::max(0LL, ToMicros(end) - ToMicros(span.start)));
      json += phase ? ",\"pid\":2,\"tid\":" : ",\"pid\":1,\"tid\":";
      json += std::to_string(trace->tid);
      json += ",\"args\":{\"query\":";
      json += std::to_string(trace->id);
      if (!span.detail.empty()) {
        json += ",\"detail\":\"";
        json += JsonEscape(span.detail);
        json += '"';
      }
      json += "}}";
      WriteEvent(out, first, json);
    }
    for (const TraceInstant& instant : trace->instants) {
      std::string json = "{\"name\":\"";
      json += JsonEscape(instant.name);
      json += "\",\"cat\":\"";
      json += JsonEscape(trace->workload);
      json += "\",\"ph\":\"X\",\"ts\":";
      json += std::to_string(ToMicros(instant.time));
      json += ",\"dur\":0,\"pid\":1,\"tid\":";
      json += std::to_string(trace->tid);
      json += ",\"args\":{\"query\":";
      json += std::to_string(trace->id);
      if (!instant.detail.empty()) {
        json += ",\"detail\":\"";
        json += JsonEscape(instant.detail);
        json += '"';
      }
      json += "}}";
      WriteEvent(out, first, json);
    }
  }

  if (monitor != nullptr) {
    for (const auto& [name, series] : monitor->all_series()) {
      for (const TimePoint& point : series.points()) {
        std::string json = "{\"name\":\"";
        json += JsonEscape(name);
        json += "\",\"ph\":\"C\",\"ts\":";
        json += std::to_string(ToMicros(point.time));
        json += ",\"pid\":1,\"args\":{\"value\":";
        json += FormatDouble(point.value);
        json += "}}";
        WriteEvent(out, first, json);
      }
    }
  }
  out << "\n]\n";
}

void WritePrometheus(const MetricsRegistry& metrics, std::ostream& out) {
  metrics.WritePrometheus(out);
}

void WriteSeriesJsonl(const Monitor& monitor, std::ostream& out) {
  for (const auto& [name, series] : monitor.all_series()) {
    for (const TimePoint& point : series.points()) {
      out << "{\"series\":\"" << JsonEscape(name)
          << "\",\"time\":" << FormatDouble(point.time)
          << ",\"value\":" << FormatDouble(point.value) << "}\n";
    }
  }
}

void WriteSeriesCsv(const Monitor& monitor, std::ostream& out) {
  out << "series,time,value\n";
  for (const auto& [name, series] : monitor.all_series()) {
    for (const TimePoint& point : series.points()) {
      out << name << ',' << FormatDouble(point.time) << ','
          << FormatDouble(point.value) << '\n';
    }
  }
}

void WriteEventLogJsonl(const EventLog& log, std::ostream& out) {
  for (const WlmEvent& event : log.events()) {
    out << "{\"time\":" << FormatDouble(event.time) << ",\"type\":\""
        << WlmEventTypeToString(event.type)
        << "\",\"query\":" << event.query << ",\"workload\":\""
        << JsonEscape(event.workload) << "\",\"detail\":\""
        << JsonEscape(event.detail) << "\"}\n";
  }
}

}  // namespace wlm
