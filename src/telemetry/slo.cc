#include "telemetry/slo.h"

#include <cstdio>

namespace wlm {

ServiceLevelObjective ServiceLevelObjective::AvgResponse(double seconds) {
  ServiceLevelObjective slo;
  slo.metric = Metric::kAvgResponseTime;
  slo.target = seconds;
  return slo;
}

ServiceLevelObjective ServiceLevelObjective::PercentileResponse(
    double percentile, double seconds) {
  ServiceLevelObjective slo;
  slo.metric = Metric::kPercentileResponseTime;
  slo.percentile = percentile;
  slo.target = seconds;
  return slo;
}

ServiceLevelObjective ServiceLevelObjective::MinThroughput(double per_second) {
  ServiceLevelObjective slo;
  slo.metric = Metric::kMinThroughput;
  slo.target = per_second;
  return slo;
}

ServiceLevelObjective ServiceLevelObjective::MinVelocity(double velocity) {
  ServiceLevelObjective slo;
  slo.metric = Metric::kMinVelocity;
  slo.target = velocity;
  return slo;
}

std::string ServiceLevelObjective::ToString() const {
  char buf[128];
  switch (metric) {
    case Metric::kAvgResponseTime:
      std::snprintf(buf, sizeof(buf), "avg response <= %.3gs", target);
      break;
    case Metric::kPercentileResponseTime:
      std::snprintf(buf, sizeof(buf), "p%.0f response <= %.3gs", percentile,
                    target);
      break;
    case Metric::kMinThroughput:
      std::snprintf(buf, sizeof(buf), "throughput >= %.3g/s", target);
      break;
    case Metric::kMinVelocity:
      std::snprintf(buf, sizeof(buf), "velocity >= %.2f", target);
      break;
  }
  return buf;
}

SloEvaluation EvaluateSlo(const ServiceLevelObjective& slo,
                          const TagStats& stats) {
  SloEvaluation eval;
  switch (slo.metric) {
    case ServiceLevelObjective::Metric::kAvgResponseTime:
      eval.actual = stats.response_times.mean();
      eval.met = stats.response_times.count() > 0 && eval.actual <= slo.target;
      eval.attainment = eval.actual > 0.0 ? slo.target / eval.actual : 1.0;
      break;
    case ServiceLevelObjective::Metric::kPercentileResponseTime:
      eval.actual = stats.response_times.Percentile(slo.percentile);
      eval.met = stats.response_times.count() > 0 && eval.actual <= slo.target;
      eval.attainment = eval.actual > 0.0 ? slo.target / eval.actual : 1.0;
      break;
    case ServiceLevelObjective::Metric::kMinThroughput:
      eval.actual = stats.last_interval_throughput;
      eval.met = eval.actual >= slo.target;
      eval.attainment = slo.target > 0.0 ? eval.actual / slo.target : 1.0;
      break;
    case ServiceLevelObjective::Metric::kMinVelocity:
      eval.actual = stats.velocities.mean();
      eval.met = stats.velocities.count() > 0 && eval.actual >= slo.target;
      eval.attainment = slo.target > 0.0 ? eval.actual / slo.target : 1.0;
      break;
  }
  return eval;
}

}  // namespace wlm
