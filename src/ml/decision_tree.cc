#include "ml/decision_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <numeric>

namespace wlm {
namespace {

// Gini impurity of a label multiset.
double Gini(const std::map<double, int>& counts, int total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (const auto& [label, count] : counts) {
    (void)label;
    double p = static_cast<double>(count) / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

DecisionTree::DecisionTree(DecisionTreeConfig config) : config_(config) {}

double DecisionTree::LeafValue(const Dataset& data,
                               const std::vector<size_t>& indices) const {
  if (indices.empty()) return 0.0;
  if (config_.regression) {
    double sum = 0.0;
    for (size_t i : indices) sum += data.target(i);
    return sum / static_cast<double>(indices.size());
  }
  std::map<double, int> counts;
  for (size_t i : indices) ++counts[data.target(i)];
  double best_label = counts.begin()->first;
  int best_count = counts.begin()->second;
  for (const auto& [label, count] : counts) {
    if (count > best_count) {
      best_label = label;
      best_count = count;
    }
  }
  return best_label;
}

double DecisionTree::Impurity(const Dataset& data,
                              const std::vector<size_t>& indices) const {
  if (config_.regression) {
    double mean = 0.0;
    for (size_t i : indices) mean += data.target(i);
    mean /= static_cast<double>(indices.size());
    double var = 0.0;
    for (size_t i : indices) {
      double d = data.target(i) - mean;
      var += d * d;
    }
    return var / static_cast<double>(indices.size());
  }
  std::map<double, int> counts;
  for (size_t i : indices) ++counts[data.target(i)];
  return Gini(counts, static_cast<int>(indices.size()));
}

void DecisionTree::Fit(const Dataset& data) {
  nodes_.clear();
  depth_ = 0;
  if (data.empty()) return;
  std::vector<size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), 0);
  Build(data, indices, 0);
}

int DecisionTree::Build(const Dataset& data, std::vector<size_t>& indices,
                        int depth) {
  depth_ = std::max(depth_, depth);
  int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_index].value = LeafValue(data, indices);

  bool stop = depth >= config_.max_depth ||
              static_cast<int>(indices.size()) <
                  2 * config_.min_samples_leaf ||
              Impurity(data, indices) < 1e-12;
  if (stop) return node_index;

  size_t nf = data.num_features();
  double parent_impurity = Impurity(data, indices);
  double best_gain = 1e-9;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<double> values;
  for (size_t f = 0; f < nf; ++f) {
    values.clear();
    for (size_t i : indices) values.push_back(data.row(i)[f]);
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    if (values.size() < 2) continue;
    // Quantile grid of candidate thresholds (midpoints).
    size_t step = std::max<size_t>(
        1, values.size() / static_cast<size_t>(
                               config_.max_thresholds_per_feature));
    for (size_t v = 0; v + 1 < values.size(); v += step) {
      double threshold = 0.5 * (values[v] + values[v + 1]);
      std::vector<size_t> left, right;
      for (size_t i : indices) {
        (data.row(i)[f] <= threshold ? left : right).push_back(i);
      }
      if (static_cast<int>(left.size()) < config_.min_samples_leaf ||
          static_cast<int>(right.size()) < config_.min_samples_leaf) {
        continue;
      }
      double n = static_cast<double>(indices.size());
      double weighted = Impurity(data, left) * left.size() / n +
                        Impurity(data, right) * right.size() / n;
      double gain = parent_impurity - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = threshold;
      }
    }
  }

  if (best_feature < 0) return node_index;  // no useful split

  std::vector<size_t> left, right;
  for (size_t i : indices) {
    (data.row(i)[best_feature] <= best_threshold ? left : right).push_back(i);
  }
  // Free the parent's index list before recursing to bound memory.
  indices.clear();
  indices.shrink_to_fit();

  int left_child = Build(data, left, depth + 1);
  int right_child = Build(data, right, depth + 1);
  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  nodes_[node_index].left = left_child;
  nodes_[node_index].right = right_child;
  return node_index;
}

double DecisionTree::Predict(const std::vector<double>& features) const {
  assert(fitted());
  int idx = 0;
  while (nodes_[idx].feature >= 0) {
    const Node& node = nodes_[idx];
    idx = features[static_cast<size_t>(node.feature)] <= node.threshold
              ? node.left
              : node.right;
  }
  return nodes_[idx].value;
}

}  // namespace wlm
