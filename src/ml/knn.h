#ifndef WLM_ML_KNN_H_
#define WLM_ML_KNN_H_

#include <cstddef>
#include <vector>

#include "ml/dataset.h"

namespace wlm {

/// k-nearest-neighbour regressor over z-score-normalized features. This is
/// the stand-in for Ganapathi et al.'s KCCA performance predictor [21]:
/// "queries with similar pre-execution properties behave similarly" —
/// predictions are the (distance-weighted) mean of the k nearest training
/// queries' observed metrics.
class KnnRegressor {
 public:
  explicit KnnRegressor(int k = 5, bool distance_weighted = true);

  void Fit(const Dataset& data);
  bool fitted() const { return !train_.empty(); }
  size_t training_size() const { return train_.size(); }

  double Predict(const std::vector<double>& features) const;

 private:
  struct Row {
    std::vector<double> z;  // normalized features
    double target;
  };

  std::vector<double> Normalize(const std::vector<double>& features) const;

  int k_;
  bool distance_weighted_;
  std::vector<Row> train_;
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

/// Gaussian naive Bayes classifier; the dynamic workload-type classifier
/// [19][73] uses it to identify OLTP vs BI behaviour from monitor windows.
class NaiveBayes {
 public:
  NaiveBayes() = default;

  /// Targets must be small non-negative integer class ids.
  void Fit(const Dataset& data);
  bool fitted() const { return !classes_.empty(); }

  int PredictClass(const std::vector<double>& features) const;
  /// Posterior probability of each class id (indexed by position in
  /// `class_ids()`).
  std::vector<double> PredictProba(const std::vector<double>& features) const;
  const std::vector<int>& class_ids() const { return classes_; }

 private:
  struct ClassModel {
    double log_prior = 0.0;
    std::vector<double> means;
    std::vector<double> variances;
  };

  std::vector<int> classes_;
  std::vector<ClassModel> models_;
};

}  // namespace wlm

#endif  // WLM_ML_KNN_H_
