#include "ml/dataset.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace wlm {

void Dataset::Add(std::vector<double> features, double target) {
  assert(rows_.empty() || features.size() == rows_[0].size());
  rows_.push_back(std::move(features));
  targets_.push_back(target);
}

void Dataset::ComputeNormalization(std::vector<double>* means,
                                   std::vector<double>* stddevs) const {
  size_t nf = num_features();
  means->assign(nf, 0.0);
  stddevs->assign(nf, 1.0);
  if (rows_.empty()) return;
  for (const auto& row : rows_) {
    for (size_t f = 0; f < nf; ++f) (*means)[f] += row[f];
  }
  for (size_t f = 0; f < nf; ++f) (*means)[f] /= static_cast<double>(size());
  std::vector<double> var(nf, 0.0);
  for (const auto& row : rows_) {
    for (size_t f = 0; f < nf; ++f) {
      double d = row[f] - (*means)[f];
      var[f] += d * d;
    }
  }
  for (size_t f = 0; f < nf; ++f) {
    double s = std::sqrt(var[f] / static_cast<double>(size()));
    (*stddevs)[f] = s > 1e-12 ? s : 1.0;
  }
}

std::pair<Dataset, Dataset> Dataset::Split(double train_fraction,
                                           Rng* rng) const {
  std::vector<size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  // Fisher-Yates with the caller's deterministic rng.
  for (size_t i = order.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }
  size_t n_train = static_cast<size_t>(
      std::llround(train_fraction * static_cast<double>(size())));
  Dataset train(feature_names_);
  Dataset test(feature_names_);
  for (size_t i = 0; i < order.size(); ++i) {
    Dataset& dst = i < n_train ? train : test;
    dst.Add(rows_[order[i]], targets_[order[i]]);
  }
  return {std::move(train), std::move(test)};
}

}  // namespace wlm
