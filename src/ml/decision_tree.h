#ifndef WLM_ML_DECISION_TREE_H_
#define WLM_ML_DECISION_TREE_H_

#include <cstddef>
#include <vector>

#include "ml/dataset.h"

namespace wlm {

struct DecisionTreeConfig {
  int max_depth = 8;
  int min_samples_leaf = 4;
  /// Candidate split thresholds evaluated per feature (quantile grid).
  int max_thresholds_per_feature = 32;
  /// false: classification (Gini impurity, majority-vote leaves);
  /// true: regression (variance reduction, mean leaves). The PQR-style
  /// execution-time-range predictor [23] uses classification over time
  /// buckets; resource prediction uses regression.
  bool regression = false;
};

/// CART decision tree. Deterministic: ties break toward the lowest feature
/// index and threshold.
class DecisionTree {
 public:
  explicit DecisionTree(DecisionTreeConfig config = DecisionTreeConfig());

  /// Learns the tree; replaces any previous fit.
  void Fit(const Dataset& data);
  bool fitted() const { return !nodes_.empty(); }

  /// Predicted class id (classification) or mean value (regression).
  double Predict(const std::vector<double>& features) const;

  size_t node_count() const { return nodes_.size(); }
  int depth() const { return depth_; }

 private:
  struct Node {
    int feature = -1;          // -1 for leaves
    double threshold = 0.0;    // go left if x[feature] <= threshold
    int left = -1;
    int right = -1;
    double value = 0.0;        // leaf prediction
  };

  int Build(const Dataset& data, std::vector<size_t>& indices, int depth);
  double LeafValue(const Dataset& data,
                   const std::vector<size_t>& indices) const;
  double Impurity(const Dataset& data,
                  const std::vector<size_t>& indices) const;

  DecisionTreeConfig config_;
  std::vector<Node> nodes_;
  int depth_ = 0;
};

}  // namespace wlm

#endif  // WLM_ML_DECISION_TREE_H_
