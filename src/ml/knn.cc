#include "ml/knn.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

namespace wlm {

KnnRegressor::KnnRegressor(int k, bool distance_weighted)
    : k_(k), distance_weighted_(distance_weighted) {
  assert(k_ > 0);
}

std::vector<double> KnnRegressor::Normalize(
    const std::vector<double>& features) const {
  std::vector<double> z(features.size());
  for (size_t f = 0; f < features.size(); ++f) {
    z[f] = (features[f] - means_[f]) / stddevs_[f];
  }
  return z;
}

void KnnRegressor::Fit(const Dataset& data) {
  train_.clear();
  data.ComputeNormalization(&means_, &stddevs_);
  train_.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    train_.push_back(Row{Normalize(data.row(i)), data.target(i)});
  }
}

double KnnRegressor::Predict(const std::vector<double>& features) const {
  assert(fitted());
  std::vector<double> z = Normalize(features);
  // (distance^2, index), partial-sorted for the k nearest.
  std::vector<std::pair<double, size_t>> dists;
  dists.reserve(train_.size());
  for (size_t i = 0; i < train_.size(); ++i) {
    double d2 = 0.0;
    for (size_t f = 0; f < z.size(); ++f) {
      double d = z[f] - train_[i].z[f];
      d2 += d * d;
    }
    dists.emplace_back(d2, i);
  }
  size_t k = std::min(static_cast<size_t>(k_), dists.size());
  std::partial_sort(dists.begin(), dists.begin() + static_cast<ptrdiff_t>(k),
                    dists.end());
  double weight_sum = 0.0;
  double value = 0.0;
  for (size_t j = 0; j < k; ++j) {
    double w = 1.0;
    if (distance_weighted_) {
      w = 1.0 / (std::sqrt(dists[j].first) + 1e-6);
    }
    value += w * train_[dists[j].second].target;
    weight_sum += w;
  }
  return weight_sum > 0.0 ? value / weight_sum : 0.0;
}

void NaiveBayes::Fit(const Dataset& data) {
  classes_.clear();
  models_.clear();
  if (data.empty()) return;
  size_t nf = data.num_features();

  std::map<int, std::vector<size_t>> by_class;
  for (size_t i = 0; i < data.size(); ++i) {
    by_class[static_cast<int>(data.target(i))].push_back(i);
  }
  for (const auto& [cls, rows] : by_class) {
    classes_.push_back(cls);
    ClassModel model;
    model.log_prior = std::log(static_cast<double>(rows.size()) /
                               static_cast<double>(data.size()));
    model.means.assign(nf, 0.0);
    model.variances.assign(nf, 0.0);
    for (size_t i : rows) {
      for (size_t f = 0; f < nf; ++f) model.means[f] += data.row(i)[f];
    }
    for (size_t f = 0; f < nf; ++f) {
      model.means[f] /= static_cast<double>(rows.size());
    }
    for (size_t i : rows) {
      for (size_t f = 0; f < nf; ++f) {
        double d = data.row(i)[f] - model.means[f];
        model.variances[f] += d * d;
      }
    }
    for (size_t f = 0; f < nf; ++f) {
      model.variances[f] =
          model.variances[f] / static_cast<double>(rows.size()) + 1e-9;
    }
    models_.push_back(std::move(model));
  }
}

std::vector<double> NaiveBayes::PredictProba(
    const std::vector<double>& features) const {
  assert(fitted());
  std::vector<double> log_post(classes_.size());
  for (size_t c = 0; c < classes_.size(); ++c) {
    const ClassModel& m = models_[c];
    double lp = m.log_prior;
    for (size_t f = 0; f < features.size(); ++f) {
      double var = m.variances[f];
      double d = features[f] - m.means[f];
      lp += -0.5 * std::log(2.0 * M_PI * var) - d * d / (2.0 * var);
    }
    log_post[c] = lp;
  }
  double max_lp = *std::max_element(log_post.begin(), log_post.end());
  double total = 0.0;
  for (double& lp : log_post) {
    lp = std::exp(lp - max_lp);
    total += lp;
  }
  for (double& lp : log_post) lp /= total;
  return log_post;
}

int NaiveBayes::PredictClass(const std::vector<double>& features) const {
  std::vector<double> proba = PredictProba(features);
  size_t best = 0;
  for (size_t c = 1; c < proba.size(); ++c) {
    if (proba[c] > proba[best]) best = c;
  }
  return classes_[best];
}

}  // namespace wlm
