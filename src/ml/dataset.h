#ifndef WLM_ML_DATASET_H_
#define WLM_ML_DATASET_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace wlm {

/// A dense numeric learning problem: rows of feature vectors with one
/// target each (a class id for classification, a real value for
/// regression). The prediction-based admission controllers train on query
/// logs converted into this shape.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names)
      : feature_names_(std::move(feature_names)) {}

  void Add(std::vector<double> features, double target);

  size_t size() const { return targets_.size(); }
  bool empty() const { return targets_.empty(); }
  size_t num_features() const {
    return rows_.empty() ? feature_names_.size() : rows_[0].size();
  }
  const std::vector<double>& row(size_t i) const { return rows_[i]; }
  double target(size_t i) const { return targets_[i]; }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  /// Per-feature mean and standard deviation (for z-score normalization).
  void ComputeNormalization(std::vector<double>* means,
                            std::vector<double>* stddevs) const;

  /// Deterministically shuffles and splits into (train, test) with
  /// `train_fraction` of rows in train.
  std::pair<Dataset, Dataset> Split(double train_fraction, Rng* rng) const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<std::vector<double>> rows_;
  std::vector<double> targets_;
};

}  // namespace wlm

#endif  // WLM_ML_DATASET_H_
