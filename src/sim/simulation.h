#ifndef WLM_SIM_SIMULATION_H_
#define WLM_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace wlm {

/// Simulated time, in seconds. Everything in the library runs on virtual
/// time so experiments that model hours of DBMS operation finish in
/// milliseconds of wall clock and are fully deterministic.
using SimTime = double;

/// Discrete-event simulation kernel: a clock plus an event queue. Events
/// scheduled for the same instant fire in scheduling order (a monotone
/// sequence number breaks ties), which keeps runs reproducible.
class Simulation {
 public:
  using Callback = std::function<void()>;
  /// Handle for cancelling a scheduled event.
  using EventId = uint64_t;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now (clamped to >= 0).
  EventId Schedule(SimTime delay, Callback fn);
  /// Schedules `fn` at absolute time `when` (clamped to >= Now()).
  EventId ScheduleAt(SimTime when, Callback fn);
  /// Cancels a pending event; no-op if it already fired or was cancelled.
  void Cancel(EventId id);

  /// Runs the next pending event. Returns false when the queue is empty.
  bool Step();
  /// Runs events until the clock reaches `when` (events at exactly `when`
  /// are executed). The clock always advances to `when`.
  void RunUntil(SimTime when);
  /// Runs events for `duration` seconds of simulated time.
  void RunFor(SimTime duration) { RunUntil(now_ + duration); }
  /// Drains every pending event (use with care: periodic tasks must be
  /// stopped first or this never returns). `max_events` bounds runaway
  /// loops; returns false if the bound was hit. Only live executions
  /// count against the bound — cancelled events are skipped for free, so
  /// heavy Cancel() traffic cannot starve the remaining work.
  bool RunAll(uint64_t max_events = 100'000'000);

  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return callbacks_.size(); }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    EventId id;
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  // Pops the top heap entry; runs it if still live. Returns true if a live
  // event was executed.
  bool ExecuteTop();

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_;
  // Live callbacks keyed by EventId; cancellation erases the entry and the
  // stale heap node is skipped when popped.
  std::unordered_map<EventId, Callback> callbacks_;
};

/// Re-schedules itself every `period` seconds until stopped. Used for the
/// engine's resource tick, the monitor's sampling interval, and every
/// feedback controller's control interval.
class PeriodicTask {
 public:
  /// Does not start automatically; call Start().
  PeriodicTask(Simulation* sim, SimTime period, Simulation::Callback fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Begins firing `period` seconds from now (first fire at Now()+period).
  void Start();
  void Stop();
  bool running() const { return running_; }
  SimTime period() const { return period_; }
  /// Changes the period; takes effect at the next (re)scheduling.
  void set_period(SimTime period) { period_ = period; }

 private:
  void Fire();

  Simulation* sim_;
  SimTime period_;
  Simulation::Callback fn_;
  bool running_ = false;
  Simulation::EventId pending_ = 0;
};

}  // namespace wlm

#endif  // WLM_SIM_SIMULATION_H_
