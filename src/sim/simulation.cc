#include "sim/simulation.h"

#include <algorithm>
#include <cassert>

namespace wlm {

Simulation::EventId Simulation::Schedule(SimTime delay, Callback fn) {
  return ScheduleAt(now_ + std::max(delay, 0.0), std::move(fn));
}

Simulation::EventId Simulation::ScheduleAt(SimTime when, Callback fn) {
  when = std::max(when, now_);
  uint64_t seq = next_seq_++;
  EventId id = seq + 1;  // ids are 1-based so 0 can mean "none"
  heap_.push(Event{when, seq, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

void Simulation::Cancel(EventId id) { callbacks_.erase(id); }

bool Simulation::ExecuteTop() {
  Event ev = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(ev.id);
  if (it == callbacks_.end()) return false;  // cancelled
  Callback fn = std::move(it->second);
  callbacks_.erase(it);
  now_ = std::max(now_, ev.when);
  ++events_executed_;
  fn();
  return true;
}

bool Simulation::Step() {
  while (!heap_.empty()) {
    if (ExecuteTop()) return true;
  }
  return false;
}

void Simulation::RunUntil(SimTime when) {
  while (!heap_.empty() && heap_.top().when <= when) {
    ExecuteTop();
  }
  now_ = std::max(now_, when);
}

bool Simulation::RunAll(uint64_t max_events) {
  // Only *live* executions count against the budget: stale heap nodes left
  // behind by Cancel() (periodic tasks stopping and restarting, drivers
  // re-arming) are skipped for free. Otherwise a run that cancels many
  // events could exhaust the budget without making progress and starve the
  // events still pending behind the tombstones.
  uint64_t executed = 0;
  while (!heap_.empty()) {
    if (executed >= max_events) return false;
    if (ExecuteTop()) ++executed;
  }
  return true;
}

PeriodicTask::PeriodicTask(Simulation* sim, SimTime period,
                           Simulation::Callback fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  assert(period_ > 0.0);
}

PeriodicTask::~PeriodicTask() { Stop(); }

void PeriodicTask::Start() {
  if (running_) return;
  running_ = true;
  pending_ = sim_->Schedule(period_, [this] { Fire(); });
}

void PeriodicTask::Stop() {
  if (!running_) return;
  running_ = false;
  sim_->Cancel(pending_);
  pending_ = 0;
}

void PeriodicTask::Fire() {
  if (!running_) return;
  // Re-arm before running so `fn_` can Stop() us.
  pending_ = sim_->Schedule(period_, [this] { Fire(); });
  fn_();
}

}  // namespace wlm
