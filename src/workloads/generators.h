#ifndef WLM_WORKLOADS_GENERATORS_H_
#define WLM_WORKLOADS_GENERATORS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/types.h"
#include "sim/simulation.h"

namespace wlm {

/// OLTP workload shape: short transactions (milliseconds of CPU, a few
/// I/Os), hot-key exclusive locks with Zipfian skew — the paper's
/// "cashiers in a store" revenue-generating class.
struct OltpWorkloadConfig {
  std::string application = "pos-system";
  std::string user = "cashier";
  std::string client_ip = "10.0.0.1";
  double mean_cpu_seconds = 0.004;
  double mean_io_ops = 8.0;
  double memory_mb = 2.0;
  int locks_per_txn = 3;
  int64_t key_space = 2000;
  double zipf_theta = 0.8;
  /// Fraction of lock requests taken exclusive.
  double write_fraction = 0.7;
};

/// BI / analytics workload shape: heavy-tailed (lognormal) long queries,
/// large scans/joins/sorts, big memory grants, no locks (read-only MVCC
/// assumption).
struct BiWorkloadConfig {
  std::string application = "reporting";
  std::string user = "analyst";
  std::string client_ip = "10.0.0.2";
  /// Lognormal CPU demand: median = exp(mu).
  double cpu_mu = 1.0;   // median e^1 ~ 2.7 cpu-seconds
  double cpu_sigma = 1.0;
  /// I/O ops per CPU-second.
  double io_per_cpu = 600.0;
  /// Working memory scales with cpu demand.
  double memory_mb_per_cpu_second = 64.0;
  double min_memory_mb = 32.0;
  int64_t rows_per_cpu_second = 20000;
};

/// Online administrative utilities (backup / reorg / runstats): long,
/// I/O-dominated maintenance work (Parekh et al.'s throttled class).
struct UtilityWorkloadConfig {
  std::string application = "dbadmin";
  std::string user = "dba";
  std::string client_ip = "10.0.0.3";
  double cpu_seconds = 20.0;
  double io_ops = 40000.0;
  double memory_mb = 64.0;
};

/// Deterministic spec factory: every call draws from the generator's own
/// seeded Rng and allocates monotonically increasing query ids.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(uint64_t seed, QueryId first_id = 1);

  QuerySpec NextOltp(const OltpWorkloadConfig& config);
  QuerySpec NextBi(const BiWorkloadConfig& config);
  QuerySpec NextUtility(const UtilityWorkloadConfig& config);

  QueryId next_id() const { return next_id_; }
  Rng& rng() { return rng_; }

 private:
  Rng rng_;
  QueryId next_id_;
  uint64_t session_counter_ = 1;
};

/// Open-loop Poisson arrival process: draws exponential inter-arrival
/// times and feeds generated specs to `submit` until stopped or the
/// configured horizon passes.
class OpenLoopDriver {
 public:
  using MakeSpec = std::function<QuerySpec()>;
  using Submit = std::function<void(QuerySpec)>;

  /// `rate` = arrivals per second.
  OpenLoopDriver(Simulation* sim, Rng* rng, double rate, MakeSpec make,
                 Submit submit);

  /// Starts generating; arrivals stop at absolute time `until`
  /// (<= 0 means run until Stop()).
  void Start(double until = 0.0);
  void Stop();
  int64_t generated() const { return generated_; }
  void set_rate(double rate) { rate_ = rate; }

 private:
  void ScheduleNext();

  Simulation* sim_;
  Rng* rng_;
  double rate_;
  MakeSpec make_;
  Submit submit_;
  double until_ = 0.0;
  bool running_ = false;
  int64_t generated_ = 0;
  Simulation::EventId pending_ = 0;
};

/// Closed-loop client population: `clients` users each submit one request,
/// wait for its terminal completion (signalled by the caller via
/// OnRequestFinished), think, and submit again — the workload model behind
/// the MPL/thrashing experiments [69][70].
class ClosedLoopDriver {
 public:
  using MakeSpec = std::function<QuerySpec()>;
  using Submit = std::function<void(QuerySpec)>;

  ClosedLoopDriver(Simulation* sim, Rng* rng, int clients,
                   double mean_think_seconds, MakeSpec make, Submit submit);

  void Start();
  void Stop();
  /// The caller must route terminal completions here (e.g. from a
  /// WorkloadManager completion listener).
  void OnRequestFinished(QueryId id);

  int64_t submitted() const { return submitted_; }

 private:
  void ClientSubmit(int client);

  Simulation* sim_;
  Rng* rng_;
  int clients_;
  double think_;
  MakeSpec make_;
  Submit submit_;
  bool running_ = false;
  int64_t submitted_ = 0;
  std::vector<QueryId> in_flight_;  // per client
};

/// One trace record for replay.
struct TraceEntry {
  double arrival_time = 0.0;
  QuerySpec spec;
};

/// Schedules every trace entry's submission at its arrival time.
void ReplayTrace(Simulation* sim, const std::vector<TraceEntry>& trace,
                 std::function<void(QuerySpec)> submit);

}  // namespace wlm

#endif  // WLM_WORKLOADS_GENERATORS_H_
