#ifndef WLM_WORKLOADS_LOGICAL_WORKLOADS_H_
#define WLM_WORKLOADS_LOGICAL_WORKLOADS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/catalog.h"
#include "engine/types.h"

namespace wlm {

/// Logical analytical query templates in the spirit of the TPC-H query
/// set: each template names the tables it touches and its shape; the
/// generator derives the engine-level demands (CPU, I/O, memory, result
/// rows) from the catalog's table statistics through a CostModel — so a
/// bigger schema really does mean bigger queries.
struct AnalyticalTemplate {
  std::string name;
  /// Tables scanned, largest (probe side) first.
  std::vector<std::string> tables;
  /// Fraction of the probe-side rows surviving the filters, drawn
  /// uniformly in [min, max] per instance.
  double min_selectivity = 0.01;
  double max_selectivity = 0.2;
  /// Rows per group in the final aggregation (drives result rows).
  int64_t rows_per_group = 1000;
};

/// TPC-H-flavoured analytical workload generator: instantiates templates
/// against a catalog.
class AnalyticalWorkload {
 public:
  AnalyticalWorkload(const Catalog* catalog, CostModel cost_model,
                     uint64_t seed, QueryId first_id = 1);

  /// The built-in template set (pricing summary, order-priority join,
  /// shipping-mode wide join, small lookup report).
  static std::vector<AnalyticalTemplate> DefaultTemplates();

  void set_templates(std::vector<AnalyticalTemplate> templates) {
    templates_ = std::move(templates);
  }

  /// Instantiates a random template.
  QuerySpec Next();
  /// Instantiates a specific template.
  QuerySpec Instantiate(const AnalyticalTemplate& tmpl);

 private:
  const Catalog* catalog_;
  CostModel cost_;
  Rng rng_;
  QueryId next_id_;
  std::vector<AnalyticalTemplate> templates_;
};

/// TPC-C-flavoured transaction mix: NewOrder / Payment / OrderStatus /
/// Delivery / StockLevel with the standard 45/43/4/4/4 mix. Lock keys are
/// derived from the warehouse/district rows the transaction touches, so
/// hot-row contention scales down with the warehouse count exactly as in
/// the benchmark.
class TransactionalWorkload {
 public:
  enum class TxnType {
    kNewOrder,
    kPayment,
    kOrderStatus,
    kDelivery,
    kStockLevel,
  };

  TransactionalWorkload(const Catalog* catalog, int warehouses,
                        uint64_t seed, QueryId first_id = 1);

  QuerySpec Next();
  QuerySpec Make(TxnType type);
  static const char* TxnTypeName(TxnType type);

 private:
  /// Stable lock-key encoding for a (table, row) pair.
  LockKey KeyFor(int table_code, int64_t row) const;

  const Catalog* catalog_;
  int warehouses_;
  Rng rng_;
  QueryId next_id_;
};

}  // namespace wlm

#endif  // WLM_WORKLOADS_LOGICAL_WORKLOADS_H_
