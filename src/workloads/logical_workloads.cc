#include "workloads/logical_workloads.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wlm {

AnalyticalWorkload::AnalyticalWorkload(const Catalog* catalog,
                                       CostModel cost_model, uint64_t seed,
                                       QueryId first_id)
    : catalog_(catalog),
      cost_(cost_model),
      rng_(seed),
      next_id_(first_id),
      templates_(DefaultTemplates()) {}

std::vector<AnalyticalTemplate> AnalyticalWorkload::DefaultTemplates() {
  return {
      // Q1-flavoured: full scan + heavy aggregation.
      {"pricing_summary", {"lineitem"}, 0.9, 1.0, 1'500'000},
      // Q3/Q4-flavoured: selective join across the order path.
      {"order_priority", {"lineitem", "orders", "customer"}, 0.02, 0.1,
       10'000},
      // Q8-flavoured: wide join touching most of the schema.
      {"market_share",
       {"lineitem", "orders", "customer", "part", "supplier"},
       0.005, 0.05, 50'000},
      // Small lookup-style report.
      {"supplier_report", {"partsupp", "supplier"}, 0.01, 0.05, 500},
  };
}

QuerySpec AnalyticalWorkload::Next() {
  assert(!templates_.empty());
  const AnalyticalTemplate& tmpl = templates_[static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(templates_.size()) - 1))];
  return Instantiate(tmpl);
}

QuerySpec AnalyticalWorkload::Instantiate(const AnalyticalTemplate& tmpl) {
  QuerySpec spec;
  spec.id = next_id_++;
  spec.kind = QueryKind::kBiQuery;
  spec.stmt = StatementType::kRead;
  spec.session.application = "reporting";
  spec.session.user = "analyst";
  spec.session.client_ip = "10.0.0.2";
  spec.sql_digest = tmpl.name;

  double selectivity =
      rng_.Uniform(tmpl.min_selectivity, tmpl.max_selectivity);

  double io_ops = 0.0;
  double cpu_seconds = 0.0;
  double memory_mb = 16.0;
  int64_t surviving_rows = 0;
  for (size_t i = 0; i < tmpl.tables.size(); ++i) {
    Result<TableSpec> table = catalog_->Lookup(tmpl.tables[i]);
    assert(table.ok());
    if (i == 0) {
      // Probe side: sequential scan of the whole table, filter applies.
      io_ops += static_cast<double>(table->pages) * cost_.io_ops_per_page;
      cpu_seconds += static_cast<double>(table->rows) / 1e6 *
                     cost_.cpu_seconds_per_mrow;
      surviving_rows = static_cast<int64_t>(
          std::llround(static_cast<double>(table->rows) * selectivity));
    } else {
      // Join side: scan it too (hash build) plus probe CPU.
      io_ops += static_cast<double>(table->pages) * cost_.io_ops_per_page;
      double build_mrows = static_cast<double>(table->rows) / 1e6;
      cpu_seconds += build_mrows * cost_.cpu_seconds_per_mrow;
      cpu_seconds += static_cast<double>(surviving_rows) / 1e6 *
                     cost_.cpu_seconds_per_mrow;
      memory_mb += build_mrows * cost_.join_mb_per_mrow;
      // Each join narrows the stream a bit.
      surviving_rows = std::max<int64_t>(1, surviving_rows / 2);
    }
  }
  // Final aggregation.
  cpu_seconds += static_cast<double>(surviving_rows) / 1e6 *
                 cost_.cpu_seconds_per_mrow;
  spec.result_rows =
      std::max<int64_t>(1, surviving_rows / std::max<int64_t>(
                                                1, tmpl.rows_per_group));
  spec.cpu_seconds = std::max(0.01, cpu_seconds);
  spec.io_ops = std::max(1.0, io_ops);
  spec.memory_mb = memory_mb;
  return spec;
}

TransactionalWorkload::TransactionalWorkload(const Catalog* catalog,
                                             int warehouses, uint64_t seed,
                                             QueryId first_id)
    : catalog_(catalog),
      warehouses_(warehouses),
      rng_(seed),
      next_id_(first_id) {
  assert(warehouses_ > 0);
  (void)catalog_;
}

const char* TransactionalWorkload::TxnTypeName(TxnType type) {
  switch (type) {
    case TxnType::kNewOrder:
      return "NewOrder";
    case TxnType::kPayment:
      return "Payment";
    case TxnType::kOrderStatus:
      return "OrderStatus";
    case TxnType::kDelivery:
      return "Delivery";
    case TxnType::kStockLevel:
      return "StockLevel";
  }
  return "?";
}

LockKey TransactionalWorkload::KeyFor(int table_code, int64_t row) const {
  return (static_cast<LockKey>(table_code) << 48) |
         static_cast<LockKey>(row & 0xFFFFFFFFFFFFULL);
}

QuerySpec TransactionalWorkload::Next() {
  // Standard TPC-C mix: 45/43/4/4/4.
  double draw = rng_.Uniform01();
  TxnType type;
  if (draw < 0.45) {
    type = TxnType::kNewOrder;
  } else if (draw < 0.88) {
    type = TxnType::kPayment;
  } else if (draw < 0.92) {
    type = TxnType::kOrderStatus;
  } else if (draw < 0.96) {
    type = TxnType::kDelivery;
  } else {
    type = TxnType::kStockLevel;
  }
  return Make(type);
}

QuerySpec TransactionalWorkload::Make(TxnType type) {
  QuerySpec spec;
  spec.id = next_id_++;
  spec.kind = QueryKind::kOltpTransaction;
  spec.session.application = "pos-system";
  spec.session.user = "terminal";
  spec.session.client_ip = "10.0.0.1";
  spec.sql_digest = TxnTypeName(type);

  int64_t w = rng_.UniformInt(0, warehouses_ - 1);
  int64_t d = rng_.UniformInt(0, 9);
  constexpr int kWarehouse = 1, kDistrict = 2, kCustomer = 3, kStock = 4,
                kOrders = 5;

  switch (type) {
    case TxnType::kNewOrder: {
      spec.stmt = StatementType::kDml;
      spec.cpu_seconds = 0.004;
      spec.io_ops = 12.0;
      spec.memory_mb = 1.0;
      spec.result_rows = 1;
      // District next-order-id row is the classic hot spot: exclusive.
      spec.locks.push_back({KeyFor(kDistrict, w * 10 + d), true});
      // 5-15 stock rows, shared warehouse row.
      spec.locks.push_back({KeyFor(kWarehouse, w), false});
      int items = static_cast<int>(rng_.UniformInt(5, 15));
      for (int i = 0; i < items; ++i) {
        int64_t stock_row = w * 100'000 + rng_.Zipf(100'000, 0.6);
        spec.locks.push_back({KeyFor(kStock, stock_row), true});
      }
      spec.io_ops += items;
      break;
    }
    case TxnType::kPayment: {
      spec.stmt = StatementType::kDml;
      spec.cpu_seconds = 0.003;
      spec.io_ops = 8.0;
      spec.memory_mb = 1.0;
      spec.result_rows = 1;
      // Warehouse YTD update: the benchmark's other famous hot row.
      spec.locks.push_back({KeyFor(kWarehouse, w), true});
      spec.locks.push_back({KeyFor(kDistrict, w * 10 + d), true});
      spec.locks.push_back(
          {KeyFor(kCustomer, w * 30'000 + rng_.UniformInt(0, 29'999)),
           true});
      break;
    }
    case TxnType::kOrderStatus: {
      spec.stmt = StatementType::kRead;
      spec.cpu_seconds = 0.002;
      spec.io_ops = 6.0;
      spec.memory_mb = 1.0;
      spec.result_rows = 15;
      spec.locks.push_back(
          {KeyFor(kCustomer, w * 30'000 + rng_.UniformInt(0, 29'999)),
           false});
      break;
    }
    case TxnType::kDelivery: {
      spec.stmt = StatementType::kDml;
      spec.cpu_seconds = 0.010;
      spec.io_ops = 40.0;
      spec.memory_mb = 2.0;
      spec.result_rows = 10;
      // Touches all 10 districts of the warehouse.
      for (int64_t district = 0; district < 10; ++district) {
        spec.locks.push_back(
            {KeyFor(kOrders, w * 10 + district), true});
      }
      break;
    }
    case TxnType::kStockLevel: {
      spec.stmt = StatementType::kRead;
      spec.cpu_seconds = 0.008;
      spec.io_ops = 60.0;
      spec.memory_mb = 2.0;
      spec.result_rows = 100;
      spec.locks.push_back({KeyFor(kDistrict, w * 10 + d), false});
      break;
    }
  }
  // Keys in deterministic sorted order (index-ordered access).
  std::sort(spec.locks.begin(), spec.locks.end(),
            [](const LockRequest& a, const LockRequest& b) {
              return a.key < b.key;
            });
  spec.locks.erase(
      std::unique(spec.locks.begin(), spec.locks.end(),
                  [](const LockRequest& a, const LockRequest& b) {
                    return a.key == b.key;
                  }),
      spec.locks.end());
  return spec;
}

}  // namespace wlm
