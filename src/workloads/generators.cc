#include "workloads/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace wlm {

WorkloadGenerator::WorkloadGenerator(uint64_t seed, QueryId first_id)
    : rng_(seed), next_id_(first_id) {}

QuerySpec WorkloadGenerator::NextOltp(const OltpWorkloadConfig& config) {
  QuerySpec spec;
  spec.id = next_id_++;
  spec.kind = QueryKind::kOltpTransaction;
  spec.stmt = rng_.Bernoulli(config.write_fraction) ? StatementType::kDml
                                                    : StatementType::kRead;
  spec.cpu_seconds = rng_.Exponential(config.mean_cpu_seconds);
  spec.io_ops = rng_.Exponential(config.mean_io_ops);
  spec.memory_mb = config.memory_mb;
  spec.result_rows = rng_.UniformInt(1, 20);
  spec.session.application = config.application;
  spec.session.user = config.user;
  spec.session.client_ip = config.client_ip;
  spec.session.session_id = session_counter_++;
  spec.sql_digest = "oltp_txn";

  // Distinct Zipf-hot keys, acquired in sorted order (real systems order
  // index accesses; deadlocks still arise from upgrades and interleaving
  // elsewhere, and generators can shuffle for deadlock experiments).
  std::unordered_set<LockKey> keys;
  while (static_cast<int>(keys.size()) < config.locks_per_txn) {
    keys.insert(static_cast<LockKey>(
        rng_.Zipf(config.key_space, config.zipf_theta)));
  }
  // Draw the write/read flags in sorted key order, not hash order: the
  // Bernoulli draws consume RNG state, so iterating the raw set would let
  // the hash function decide which key becomes a write.
  std::vector<LockKey> sorted_keys(keys.begin(), keys.end());
  std::sort(sorted_keys.begin(), sorted_keys.end());
  for (LockKey key : sorted_keys) {
    spec.locks.push_back(
        LockRequest{key, rng_.Bernoulli(config.write_fraction)});
  }
  return spec;
}

QuerySpec WorkloadGenerator::NextBi(const BiWorkloadConfig& config) {
  QuerySpec spec;
  spec.id = next_id_++;
  spec.kind = QueryKind::kBiQuery;
  spec.stmt = StatementType::kRead;
  spec.cpu_seconds = rng_.LogNormal(config.cpu_mu, config.cpu_sigma);
  spec.io_ops = spec.cpu_seconds * config.io_per_cpu *
                rng_.Uniform(0.6, 1.4);
  spec.memory_mb = std::max(config.min_memory_mb,
                            spec.cpu_seconds * config.memory_mb_per_cpu_second);
  spec.result_rows = std::max<int64_t>(
      1, static_cast<int64_t>(spec.cpu_seconds *
                              static_cast<double>(config.rows_per_cpu_second)));
  spec.session.application = config.application;
  spec.session.user = config.user;
  spec.session.client_ip = config.client_ip;
  spec.session.session_id = session_counter_++;
  spec.sql_digest = "bi_query";
  return spec;
}

QuerySpec WorkloadGenerator::NextUtility(const UtilityWorkloadConfig& config) {
  QuerySpec spec;
  spec.id = next_id_++;
  spec.kind = QueryKind::kUtility;
  spec.stmt = StatementType::kCall;
  spec.cpu_seconds = config.cpu_seconds * rng_.Uniform(0.8, 1.2);
  spec.io_ops = config.io_ops * rng_.Uniform(0.8, 1.2);
  spec.memory_mb = config.memory_mb;
  spec.result_rows = 1;
  spec.session.application = config.application;
  spec.session.user = config.user;
  spec.session.client_ip = config.client_ip;
  spec.session.session_id = session_counter_++;
  spec.sql_digest = "utility_op";
  return spec;
}

OpenLoopDriver::OpenLoopDriver(Simulation* sim, Rng* rng, double rate,
                               MakeSpec make, Submit submit)
    : sim_(sim),
      rng_(rng),
      rate_(rate),
      make_(std::move(make)),
      submit_(std::move(submit)) {
  assert(rate_ > 0.0);
}

void OpenLoopDriver::Start(double until) {
  until_ = until;
  running_ = true;
  ScheduleNext();
}

void OpenLoopDriver::Stop() {
  running_ = false;
  if (pending_ != 0) {
    sim_->Cancel(pending_);
    pending_ = 0;
  }
}

void OpenLoopDriver::ScheduleNext() {
  double gap = rng_->Exponential(1.0 / rate_);
  double when = sim_->Now() + gap;
  if (until_ > 0.0 && when > until_) {
    running_ = false;
    return;
  }
  pending_ = sim_->Schedule(gap, [this] {
    if (!running_) return;
    ++generated_;
    submit_(make_());
    ScheduleNext();
  });
}

ClosedLoopDriver::ClosedLoopDriver(Simulation* sim, Rng* rng, int clients,
                                   double mean_think_seconds, MakeSpec make,
                                   Submit submit)
    : sim_(sim),
      rng_(rng),
      clients_(clients),
      think_(mean_think_seconds),
      make_(std::move(make)),
      submit_(std::move(submit)),
      in_flight_(static_cast<size_t>(clients), 0) {}

void ClosedLoopDriver::Start() {
  running_ = true;
  for (int c = 0; c < clients_; ++c) {
    // Stagger initial submissions by a fraction of the think time.
    double delay = think_ > 0.0 ? rng_->Uniform(0.0, think_) : 0.0;
    sim_->Schedule(delay, [this, c] {
      if (running_) ClientSubmit(c);
    });
  }
}

void ClosedLoopDriver::Stop() { running_ = false; }

void ClosedLoopDriver::ClientSubmit(int client) {
  QuerySpec spec = make_();
  in_flight_[static_cast<size_t>(client)] = spec.id;
  ++submitted_;
  submit_(std::move(spec));
}

void ClosedLoopDriver::OnRequestFinished(QueryId id) {
  if (!running_) return;
  for (int c = 0; c < clients_; ++c) {
    if (in_flight_[static_cast<size_t>(c)] == id) {
      in_flight_[static_cast<size_t>(c)] = 0;
      double think = think_ > 0.0 ? rng_->Exponential(think_) : 0.0;
      sim_->Schedule(think, [this, c] {
        if (running_) ClientSubmit(c);
      });
      return;
    }
  }
}

void ReplayTrace(Simulation* sim, const std::vector<TraceEntry>& trace,
                 std::function<void(QuerySpec)> submit) {
  for (const TraceEntry& entry : trace) {
    QuerySpec spec = entry.spec;
    sim->ScheduleAt(entry.arrival_time,
                    [submit, spec] { submit(spec); });
  }
}

}  // namespace wlm
