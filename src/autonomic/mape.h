#ifndef WLM_AUTONOMIC_MAPE_H_
#define WLM_AUTONOMIC_MAPE_H_

#include <map>
#include <string>
#include <vector>

#include "core/interfaces.h"
#include "telemetry/slo.h"

namespace wlm {

/// Analyzer output for one workload: SLO evaluations against the monitor.
struct WorkloadHealth {
  std::string workload;
  BusinessPriority priority = BusinessPriority::kMedium;
  std::vector<SloEvaluation> evaluations;
  bool all_met = true;
  /// Minimum attainment across SLOs (>= 1 means everything met).
  double worst_attainment = 1.0;
};

/// One planner decision, for the knowledge log.
struct AutonomicAction {
  double time = 0.0;
  enum class Type { kThrottle, kRelax, kSuspend, kKillResubmit } type =
      Type::kThrottle;
  QueryId target = 0;
  std::string detail;
};

/// The paper's Section 5.3 vision made concrete: a MAPE-K feedback loop —
/// Monitor (the wlm::Monitor), Analyzer (per-workload SLO evaluation),
/// Planner (escalation ladder over the execution-control techniques,
/// guided by how much work each action destroys) and Effector (the
/// WorkloadManager's control actions). Protected (high-importance)
/// workloads missing their objectives cause progressively stronger
/// interventions against lower-importance running work: throttle first,
/// suspend if throttling saturates, kill-and-resubmit young queries as a
/// last resort; when objectives are met again the loop relaxes throttles.
class AutonomicController : public ExecutionController {
 public:
  struct Config {
    /// Workloads at or above this priority are protected.
    BusinessPriority protected_min = BusinessPriority::kHigh;
    /// Need at least this many completions before trusting SLO stats.
    int64_t min_observations = 5;
    /// Multiplicative throttle escalation per interval.
    double throttle_factor = 0.5;
    double min_duty = 0.1;
    /// Additive duty restoration per interval when goals are met.
    double relax_step = 0.15;
    /// Victims below this progress may be killed-and-resubmitted once
    /// throttling and suspension are exhausted.
    double kill_progress_cut = 0.25;
    double suspend_progress_cut = 0.8;
    int max_suspends = 1;
    /// Evaluate response/velocity SLOs against the smoothed *recent*
    /// signal instead of lifetime statistics, so the loop reacts to the
    /// current state and releases pressure once the incident passes.
    bool use_recent_signal = true;
  };

  AutonomicController();
  explicit AutonomicController(Config config);

  /// Analyze step, exposed for tests: evaluates every defined workload
  /// that has SLOs.
  std::vector<WorkloadHealth> Analyze(const WorkloadManager& manager) const;

  void OnSample(const SystemIndicators& indicators,
                WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  const std::vector<AutonomicAction>& action_log() const { return log_; }

 private:
  void Escalate(WorkloadManager& manager);
  void Relax(WorkloadManager& manager);

  Config config_;
  // Ordered: Relax() iterates this while throttling and appending to the
  // action log, so iteration order must be id order, not hash order.
  std::map<QueryId, double> duties_;  // current throttle per victim
  std::vector<AutonomicAction> log_;
};

}  // namespace wlm

#endif  // WLM_AUTONOMIC_MAPE_H_
