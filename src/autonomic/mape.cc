#include "autonomic/mape.h"

#include <algorithm>
#include <cmath>

#include "core/workload_manager.h"

namespace wlm {

AutonomicController::AutonomicController()
    : AutonomicController(Config()) {}

AutonomicController::AutonomicController(Config config) : config_(config) {}

std::vector<WorkloadHealth> AutonomicController::Analyze(
    const WorkloadManager& manager) const {
  std::vector<WorkloadHealth> out;
  for (const auto& [name, def] : manager.workloads()) {
    if (def.slos.empty()) continue;
    const TagStats& stats = manager.monitor()->tag_stats(name);
    WorkloadHealth health;
    health.workload = name;
    health.priority = def.priority;
    if (stats.completed < config_.min_observations) {
      out.push_back(std::move(health));  // insufficient data: assume met
      continue;
    }
    for (const ServiceLevelObjective& slo : def.slos) {
      SloEvaluation eval;
      if (config_.use_recent_signal &&
          slo.metric == ServiceLevelObjective::Metric::kAvgResponseTime &&
          !stats.recent_response.empty()) {
        eval.actual = stats.recent_response.value();
        eval.met = eval.actual <= slo.target;
        eval.attainment = eval.actual > 0.0 ? slo.target / eval.actual : 1.0;
      } else if (config_.use_recent_signal &&
                 slo.metric ==
                     ServiceLevelObjective::Metric::kMinVelocity &&
                 !stats.recent_velocity.empty()) {
        eval.actual = stats.recent_velocity.value();
        eval.met = eval.actual >= slo.target;
        eval.attainment = slo.target > 0.0 ? eval.actual / slo.target : 1.0;
      } else {
        eval = EvaluateSlo(slo, stats);
      }
      health.all_met = health.all_met && eval.met;
      health.worst_attainment =
          std::min(health.worst_attainment, eval.attainment);
      health.evaluations.push_back(eval);
    }
    out.push_back(std::move(health));
  }
  return out;
}

void AutonomicController::OnSample(const SystemIndicators& indicators,
                                   WorkloadManager& manager) {
  (void)indicators;
  // Analyze. A protected workload only warrants intervention while it
  // actually has work in the system — a stale miss on an idle workload
  // must not starve the victims forever.
  bool protected_missing = false;
  for (const WorkloadHealth& h : Analyze(manager)) {
    if (h.priority < config_.protected_min || h.all_met) continue;
    // Short transactions come and go between samples, so "active" means
    // in-flight now *or* completing within the last interval.
    bool active = manager.RunningInWorkload(h.workload) +
                          manager.QueuedInWorkload(h.workload) >
                      0 ||
                  manager.monitor()->tag_stats(h.workload)
                          .last_interval_throughput > 0.0;
    if (active) {
      protected_missing = true;
      break;
    }
  }
  // Plan + Execute.
  if (protected_missing) {
    Escalate(manager);
  } else {
    Relax(manager);
  }
}

void AutonomicController::Escalate(WorkloadManager& manager) {
  double now = manager.sim()->Now();
  for (const ExecutionProgress& p : manager.engine()->Snapshot()) {
    const Request* request = manager.Find(p.id);
    if (request == nullptr) continue;
    if (request->priority >= config_.protected_min) continue;
    if (p.suspending) continue;

    // Decide from the engine's actual duty (a resubmitted victim restarts
    // at full speed even if the ledger remembers an old value).
    double& duty = duties_.try_emplace(p.id, 1.0).first->second;
    duty = p.duty;
    if (duty > config_.min_duty + 1e-9) {
      // Cheapest action first: throttle harder.
      duty = std::max(config_.min_duty, duty * config_.throttle_factor);
      (void)manager.ThrottleRequest(p.id, duty);
      log_.push_back({now, AutonomicAction::Type::kThrottle, p.id,
                      "duty=" + std::to_string(duty)});
      continue;
    }
    // Throttle saturated: free the resources entirely.
    if (request->suspend_count < config_.max_suspends &&
        p.fraction_done < config_.suspend_progress_cut) {
      if (manager.SuspendRequest(p.id, SuspendStrategy::kDumpState).ok()) {
        log_.push_back(
            {now, AutonomicAction::Type::kSuspend, p.id, "DumpState"});
      }
      continue;
    }
    if (p.fraction_done < config_.kill_progress_cut &&
        request->resubmits == 0) {
      // One shot only: re-killing a resubmitted victim into the same
      // incident is pure churn — after that it waits at min duty.
      if (manager.KillRequest(p.id, /*resubmit=*/true).ok()) {
        log_.push_back({now, AutonomicAction::Type::kKillResubmit, p.id,
                        "young victim"});
      }
    }
    // Otherwise: the victim is nearly done (or already recycled once);
    // stalling it at min duty is the least destructive option.
  }
}

void AutonomicController::Relax(WorkloadManager& manager) {
  double now = manager.sim()->Now();
  for (auto it = duties_.begin(); it != duties_.end();) {
    QueryId id = it->first;
    double& duty = it->second;
    if (!manager.engine()->IsActive(id)) {
      it = duties_.erase(it);
      continue;
    }
    if (duty < 1.0) {
      duty = std::min(1.0, duty + config_.relax_step);
      (void)manager.ThrottleRequest(id, duty);
      log_.push_back({now, AutonomicAction::Type::kRelax, id,
                      "duty=" + std::to_string(duty)});
    }
    ++it;
  }
}

TechniqueInfo AutonomicController::info() const {
  TechniqueInfo info;
  info.name = "Autonomic MAPE-K controller";
  info.technique_class = TechniqueClass::kExecutionControl;
  info.subclass = TechniqueSubclass::kThrottling;
  info.description =
      "Monitor-Analyze-Plan-Execute loop: evaluates per-workload SLOs "
      "and escalates throttle -> suspend -> kill-and-resubmit against "
      "lower-importance work until protected objectives are met, then "
      "relaxes.";
  info.source = "Zhang et al. [80], Kephart & Chess [32] (Section 5.3)";
  return info;
}

}  // namespace wlm
