#ifndef WLM_EXECUTION_FUZZY_CONTROLLER_H_
#define WLM_EXECUTION_FUZZY_CONTROLLER_H_

#include <set>
#include <string>
#include <unordered_map>

#include "core/interfaces.h"

namespace wlm {

/// Fuzzy membership helpers (triangular / shoulder sets).
double RampUp(double x, double a, double b);    // 0 below a, 1 above b
double RampDown(double x, double a, double b);  // 1 below a, 0 above b
double Triangular(double x, double a, double b, double c);  // peak at b

/// Actions the fuzzy execution controller can take on a running query.
enum class FuzzyAction { kContinue, kReprioritize, kKill, kKillResubmit };

const char* FuzzyActionToString(FuzzyAction a);

/// Krompass et al.'s rule-based fuzzy execution controller for BI
/// workloads on a data warehouse [39]: queries' execution times are not
/// entirely predictable, so crisp thresholds misfire; instead fuzzy sets
/// over the query's *relative overrun* (elapsed / estimated elapsed),
/// *operator progress* and *priority* feed a rule base whose max-min
/// inference picks among continue / reprioritize / kill /
/// kill-and-resubmit.
class FuzzyExecutionController : public ExecutionController {
 public:
  struct Config {
    /// Overrun fuzzy-set breakpoints.
    double overrun_ok = 1.5;
    double overrun_long = 3.0;
    double overrun_huge = 6.0;
    /// Progress fuzzy-set breakpoints.
    double progress_low = 0.3;
    double progress_high = 0.7;
    /// Priority at or above this counts as "high".
    BusinessPriority high_priority_cut = BusinessPriority::kHigh;
    /// Only control these workloads (empty = all).
    std::set<std::string> workloads;
    /// Ignore queries younger than this (estimates too noisy).
    double min_elapsed_seconds = 1.0;
    /// Reprioritization cap per query (repeated demotions thrash).
    int max_reprioritizations = 2;
  };

  FuzzyExecutionController();
  explicit FuzzyExecutionController(Config config);

  /// The fuzzy inference itself (exposed for unit tests): given the crisp
  /// inputs, returns the winning action.
  FuzzyAction Decide(double overrun, double progress,
                     bool high_priority) const;

  void OnSample(const SystemIndicators& indicators,
                WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  int64_t kills() const { return kills_; }
  int64_t resubmit_kills() const { return resubmit_kills_; }
  int64_t reprioritizations() const { return reprioritizations_; }

 private:
  Config config_;
  std::unordered_map<QueryId, int> reprioritized_;
  int64_t kills_ = 0;
  int64_t resubmit_kills_ = 0;
  int64_t reprioritizations_ = 0;
};

}  // namespace wlm

#endif  // WLM_EXECUTION_FUZZY_CONTROLLER_H_
