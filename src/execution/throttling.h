#ifndef WLM_EXECUTION_THROTTLING_H_
#define WLM_EXECUTION_THROTTLING_H_

#include <string>
#include <unordered_set>

#include "control/controllers.h"
#include "core/interfaces.h"

namespace wlm {

/// Utility throttling (Parekh et al. [64], Table 3 row 5 / Table 5 row 2):
/// all work is split into production applications and online utilities
/// (backup, reorg, statistics). The controller monitors production
/// performance degradation relative to a baseline and uses a
/// Proportional-Integral controller to set the utilities' throttling
/// level; a workload control function translates that level into a
/// self-imposed sleep fraction (duty cycle) for every running utility.
class UtilityThrottleController : public ExecutionController {
 public:
  struct Config {
    /// Workload containing the online utilities (the throttled class).
    std::string utility_workload = "utilities";
    /// Production workload whose performance is protected.
    std::string production_workload = "production";
    /// Acceptable degradation: production velocity must stay at or above
    /// this fraction of the (idle-system) baseline of 1.0.
    double degradation_limit = 0.9;
    double kp = 1.5;
    double ki = 0.8;
    /// Max throttle (never stall utilities completely).
    double max_throttle = 0.95;
  };

  UtilityThrottleController();
  explicit UtilityThrottleController(Config config);

  void OnSample(const SystemIndicators& indicators,
                WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  /// Current throttling level in [0, max_throttle].
  double throttle_level() const { return throttle_; }

 private:
  Config config_;
  PiController pi_;
  double throttle_ = 0.0;
};

/// Query throttling (Powley et al. [65][66]): slows down large queries so
/// high-priority work meets its goals. Two controllers — the diminishing
/// step function and the black-box linear model — and two throttle
/// methods: *constant* (many short evenly distributed pauses, modeled as
/// a duty cycle) and *interrupt* (one long pause per query).
class QueryThrottleController : public ExecutionController {
 public:
  enum class ControllerKind { kStep, kBlackBox };
  enum class Method { kConstant, kInterrupt };

  struct Config {
    /// The large queries being throttled.
    std::string victim_workload = "bi";
    /// The workload whose response-time goal must be met.
    std::string protected_workload = "oltp";
    double target_response_seconds = 1.0;
    ControllerKind controller = ControllerKind::kStep;
    Method method = Method::kConstant;
    /// Step controller initial step.
    double initial_step = 0.2;
    /// Interrupt method: pause length = throttle * horizon, applied once
    /// per victim query.
    double interrupt_horizon_seconds = 20.0;
    double max_throttle = 0.95;
  };

  QueryThrottleController();
  explicit QueryThrottleController(Config config);

  void OnSample(const SystemIndicators& indicators,
                WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  double throttle_level() const { return throttle_; }

 private:
  Config config_;
  DiminishingStepController step_;
  BlackBoxLinearController blackbox_;
  double throttle_ = 0.0;
  std::unordered_set<QueryId> interrupted_;  // already-paused victims
};

}  // namespace wlm

#endif  // WLM_EXECUTION_THROTTLING_H_
