#include "execution/timeout_escalation.h"

#include <unordered_set>
#include <vector>

#include "core/workload_manager.h"

namespace wlm {

TimeoutEscalationController::TimeoutEscalationController(Config config)
    : config_(std::move(config)) {}

const TimeoutEscalationController::Policy&
TimeoutEscalationController::PolicyFor(const std::string& workload) const {
  auto it = config_.per_workload.find(workload);
  return it == config_.per_workload.end() ? config_.default_policy
                                          : it->second;
}

void TimeoutEscalationController::OnSample(const SystemIndicators& indicators,
                                           WorkloadManager& manager) {
  (void)indicators;
  // Decide every action from one immutable snapshot, then act: suspends
  // and kills fire completion callbacks that mutate the running set.
  struct Action {
    QueryId id;
    Stage stage;
    const Policy* policy;
    double dispatch_time;
    bool past_deadline = false;
  };
  std::vector<Action> actions;
  std::unordered_set<QueryId> alive;
  const double now = manager.sim()->Now();
  for (const ExecutionProgress& p : manager.engine()->Snapshot()) {
    alive.insert(p.id);
    const Request* request = manager.Find(p.id);
    if (request == nullptr) continue;
    const Policy& policy = PolicyFor(request->workload);
    Stage current = Stage::kNone;
    auto stage_it = stages_.find(p.id);
    if (stage_it != stages_.end() &&
        stage_it->second.dispatch_time == p.dispatch_time) {
      current = stage_it->second.stage;
    }
    if (current >= Stage::kSuspending) continue;  // terminal rungs pending

    // Deadline rung: sits above the elapsed-time rungs because a query
    // past its deadline cannot recover no matter how long it has run.
    bool past_deadline = policy.kill_past_deadline && request->HasDeadline() &&
                         now > request->deadline +
                                   policy.deadline_grace_seconds;
    Stage target = Stage::kNone;
    if (past_deadline || (policy.kill_after_seconds > 0.0 &&
                          p.elapsed > policy.kill_after_seconds)) {
      target = Stage::kKilled;
    } else if (policy.suspend_after_seconds > 0.0 &&
               p.elapsed > policy.suspend_after_seconds) {
      target = Stage::kSuspending;
    } else if (policy.throttle_after_seconds > 0.0 &&
               p.elapsed > policy.throttle_after_seconds) {
      target = Stage::kThrottled;
    }
    if (target > current) {
      actions.push_back({p.id, target, &policy, p.dispatch_time,
                         past_deadline});
    }
  }

  // Drop ladder state for queries no longer in the engine, so a
  // suspended query climbs from the bottom rung after it resumes.
  for (auto it = stages_.begin(); it != stages_.end();) {
    if (alive.count(it->first) == 0) {
      it = stages_.erase(it);
    } else {
      ++it;
    }
  }

  for (const Action& action : actions) {
    const Request* request = manager.Find(action.id);
    const std::string workload =
        request != nullptr ? request->workload : std::string();
    switch (action.stage) {
      case Stage::kThrottled:
        if (manager.ThrottleRequest(action.id, action.policy->throttle_duty)
                .ok()) {
          stages_[action.id] = {Stage::kThrottled, action.dispatch_time};
          ++throttles_;
          manager.telemetry().OnEscalation(action.id, workload, "throttle");
        }
        break;
      case Stage::kSuspending:
        if (manager
                .SuspendRequest(action.id, action.policy->suspend_strategy)
                .ok()) {
          stages_[action.id] = {Stage::kSuspending, action.dispatch_time};
          ++suspends_;
          manager.telemetry().OnEscalation(action.id, workload, "suspend");
        }
        break;
      case Stage::kKilled: {
        // A past-deadline victim is never resubmitted: its rerun would
        // also finish past the deadline.
        bool resubmit =
            action.policy->resubmit_on_kill && !action.past_deadline;
        if (manager.KillRequest(action.id, resubmit).ok()) {
          ++kills_;
          if (action.past_deadline) ++deadline_kills_;
          stages_.erase(action.id);
          manager.telemetry().OnEscalation(
              action.id, workload,
              action.past_deadline ? "deadline_kill" : "kill");
        }
        break;
      }
      case Stage::kNone:
        break;
    }
  }
}

TechniqueInfo TimeoutEscalationController::info() const {
  TechniqueInfo info;
  info.name = "Timeout escalation (throttle/suspend/kill)";
  info.technique_class = TechniqueClass::kExecutionControl;
  info.subclass = TechniqueSubclass::kCancellation;
  info.description =
      "Per-workload execution timeouts enforced as an escalation ladder: "
      "overrunning queries are first throttled, then suspended, and "
      "finally killed, trading completion chances for resource release.";
  info.source = "escalation of Table 3 controls [30][39][50]";
  return info;
}

}  // namespace wlm
