#ifndef WLM_EXECUTION_KILL_H_
#define WLM_EXECUTION_KILL_H_

#include <set>
#include <string>

#include "core/interfaces.h"

namespace wlm {

/// Query cancellation (Table 3 row 3 [30][50][61][72]) and
/// kill-and-resubmit (Krompass et al. [39]): terminates running queries
/// whose elapsed time exceeds an absolute limit or whose overrun relative
/// to the optimizer's estimate is excessive, releasing their resources
/// immediately. With `resubmit`, victims re-enter the wait queue for a
/// later attempt.
class QueryKillController : public ExecutionController {
 public:
  struct Config {
    /// Absolute running-time limit (seconds; 0 disables).
    double max_elapsed_seconds = 0.0;
    /// Kill when elapsed > factor * estimated elapsed (0 disables).
    double overrun_factor = 0.0;
    /// Resubmit victims instead of discarding them.
    bool resubmit = false;
    /// Only queries at or below this priority are eligible victims.
    BusinessPriority max_victim_priority = BusinessPriority::kHigh;
    /// Restrict to these workloads (empty = all).
    std::set<std::string> workloads;
  };

  QueryKillController();
  explicit QueryKillController(Config config);

  void OnSample(const SystemIndicators& indicators,
                WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  int64_t kills() const { return kills_; }

 private:
  Config config_;
  int64_t kills_ = 0;
};

}  // namespace wlm

#endif  // WLM_EXECUTION_KILL_H_
