#ifndef WLM_EXECUTION_PRIORITY_AGING_H_
#define WLM_EXECUTION_PRIORITY_AGING_H_

#include <set>
#include <string>
#include <unordered_map>

#include "core/interfaces.h"

namespace wlm {

/// Priority aging (Table 3 row 1; the DB2 service-subclass remapping
/// mechanism [9][30]): dynamically downgrades the resource-access priority
/// of a request as it runs, triggered by threshold violations — running
/// longer than allowed or returning more rows than estimated. Each
/// violation moves the request one service level down (to the configured
/// floor), immediately shrinking its engine resource weights.
class PriorityAgingController : public ExecutionController {
 public:
  struct Config {
    /// First demotion when a request has been running this long.
    double elapsed_threshold_seconds = 10.0;
    /// Further demotions every this many seconds beyond the threshold.
    double repeat_every_seconds = 10.0;
    /// Demotion when the request emits more rows than this (0 disables).
    int64_t rows_threshold = 0;
    /// Lowest level aging can reach.
    BusinessPriority floor = BusinessPriority::kBackground;
    /// Only age requests of these workloads (empty = all).
    std::set<std::string> workloads;
  };

  PriorityAgingController();
  explicit PriorityAgingController(Config config);

  void OnSample(const SystemIndicators& indicators,
                WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  int64_t demotions() const { return demotions_; }

 private:
  Config config_;
  std::unordered_map<QueryId, int> applied_;  // demotion levels applied
  int64_t demotions_ = 0;
};

}  // namespace wlm

#endif  // WLM_EXECUTION_PRIORITY_AGING_H_
