#include "execution/reallocation.h"

#include <algorithm>

#include "core/workload_manager.h"

namespace wlm {

EconomicReallocationController::EconomicReallocationController(Config config)
    : config_(std::move(config)) {}

Status EconomicReallocationController::SetWealth(const std::string& workload,
                                                 double wealth) {
  if (wealth <= 0.0) return Status::InvalidArgument("wealth must be positive");
  for (Participant& p : config_.participants) {
    if (p.workload == workload) {
      p.wealth = wealth;
      return Status::OK();
    }
  }
  return Status::NotFound("unknown participant workload");
}

ResourceAllocation EconomicReallocationController::LastAllocation(
    const std::string& workload) const {
  auto it = last_.find(workload);
  return it == last_.end() ? ResourceAllocation{} : it->second;
}

void EconomicReallocationController::OnSample(
    const SystemIndicators& indicators, WorkloadManager& manager) {
  (void)indicators;
  // Every configured participant always bids: a bursty workload that is
  // momentarily idle must not forfeit its allocation to whoever happens
  // to be running (its next arrival dispatches with these shares).
  std::vector<WorkloadBid> bids;
  bids.reserve(config_.participants.size());
  for (const Participant& p : config_.participants) {
    bids.push_back(WorkloadBid{p.wealth, p.alpha_cpu, p.alpha_io});
  }
  std::vector<ResourceAllocation> equilibrium = EconomicEquilibrium(bids);

  // The equilibrium is a *workload-level* allocation: install it as engine
  // group shares (two-level fair sharing), so the workload as a whole owns
  // its share no matter how many of its queries run or block.
  for (size_t i = 0; i < config_.participants.size(); ++i) {
    const Participant& p = config_.participants[i];
    last_[p.workload] = equilibrium[i];
    ResourceShares shares;
    shares.cpu_weight =
        std::max(1e-3, equilibrium[i].cpu_share * config_.weight_scale);
    shares.io_weight =
        std::max(1e-3, equilibrium[i].io_share * config_.weight_scale);
    manager.engine()->SetGroupShares(p.workload, shares);
  }
}

TechniqueInfo EconomicReallocationController::info() const {
  TechniqueInfo info;
  info.name = "Economic resource reallocation";
  info.technique_class = TechniqueClass::kExecutionControl;
  info.subclass = TechniqueSubclass::kReprioritization;
  info.description =
      "Allocates CPU/IO shares among competing workloads as the market "
      "equilibrium of wealth (business importance) driven bidding, "
      "re-run every control interval.";
  info.source = "Boughton et al. [4], Martin et al. [46], Zhang et al. [78]";
  return info;
}

}  // namespace wlm
