#ifndef WLM_EXECUTION_PROGRESS_CONTROL_H_
#define WLM_EXECUTION_PROGRESS_CONTROL_H_

#include <set>
#include <string>

#include "core/interfaces.h"
#include "engine/progress.h"

namespace wlm {

/// Progress-indicator-driven execution control (Section 3.4's closing
/// argument [11][41][43][45]): plain execution-time thresholds kill any
/// query that has merely *waited* long, even when it is nearly finished or
/// was never a big resource consumer; a progress indicator estimates the
/// remaining work instead, so control actions target queries that are
/// genuinely far from done — no manually tuned time threshold required.
///
/// Policy: a query becomes a candidate when its *estimated remaining
/// time* (from the observed processing speed) exceeds
/// `remaining_budget_seconds`; nearly-done queries are always spared.
/// Candidates are throttled first; if the estimate grows past
/// `kill_factor` times the budget, they are killed (optionally
/// resubmitted).
class ProgressAwareController : public ExecutionController {
 public:
  struct Config {
    /// Acceptable estimated-remaining-time.
    double remaining_budget_seconds = 60.0;
    /// Kill once estimated remaining exceeds budget * kill_factor.
    double kill_factor = 4.0;
    double throttle_duty = 0.25;
    bool resubmit = false;
    /// Queries past this completion fraction are never touched.
    double spare_fraction = 0.85;
    /// Only control these workloads (empty = all).
    std::set<std::string> workloads;
    /// Victim priority ceiling.
    BusinessPriority max_victim_priority = BusinessPriority::kMedium;
  };

  /// `io_ops_per_second` must match the engine's device rate.
  ProgressAwareController(double io_ops_per_second, Config config);

  void OnSample(const SystemIndicators& indicators,
                WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  int64_t throttled() const { return throttled_; }
  int64_t kills() const { return kills_; }
  const ProgressTracker& tracker() const { return tracker_; }

 private:
  Config config_;
  ProgressTracker tracker_;
  int64_t throttled_ = 0;
  int64_t kills_ = 0;
};

}  // namespace wlm

#endif  // WLM_EXECUTION_PROGRESS_CONTROL_H_
