#include "execution/suspend_resume.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/workload_manager.h"

namespace wlm {
namespace {

constexpr double kControlStateMb = 0.5;

// Locates the currently executing operator and its progress fraction from
// the total remaining work in the snapshot.
struct OpPosition {
  size_t index = 0;
  double progress = 1.0;  // progress of the current operator in [0, 1]
  bool finished = true;
};

OpPosition LocateCurrentOp(const Plan& plan, const ExecutionProgress& progress,
                           double io_rate) {
  double remaining =
      progress.remaining_cpu + progress.remaining_io / io_rate;
  OpPosition pos;
  if (remaining <= 0.0 || plan.operators.empty()) return pos;
  // Walk from the last operator backwards, accumulating whole-op work.
  double acc = 0.0;
  for (size_t i = plan.operators.size(); i-- > 0;) {
    const PlanOperator& op = plan.operators[i];
    double op_work = op.cpu_seconds + op.io_ops / io_rate;
    if (acc + op_work >= remaining - 1e-12) {
      double remaining_in_op = remaining - acc;
      pos.index = i;
      pos.progress = op_work > 0.0
                         ? std::clamp(1.0 - remaining_in_op / op_work, 0.0, 1.0)
                         : 1.0;
      pos.finished = false;
      return pos;
    }
    acc += op_work;
  }
  // More remaining than the plan's work (spill inflation): treat as at the
  // first operator's start.
  pos.index = 0;
  pos.progress = 0.0;
  pos.finished = false;
  return pos;
}

double LastCheckpointAt(double progress, double checkpoint_fraction) {
  if (checkpoint_fraction <= 0.0) return progress;
  if (checkpoint_fraction >= 1.0) return 0.0;
  return std::floor(progress / checkpoint_fraction) * checkpoint_fraction;
}

}  // namespace

SuspendCostEstimate EstimateSuspendCost(const Plan& plan,
                                        const ExecutionProgress& progress,
                                        SuspendStrategy strategy,
                                        double io_ops_per_mb, double io_rate) {
  SuspendCostEstimate est;
  est.strategy = strategy;
  OpPosition pos = LocateCurrentOp(plan, progress, io_rate);
  double state_mb = kControlStateMb;
  if (!pos.finished) {
    const PlanOperator& op = plan.operators[pos.index];
    if (strategy == SuspendStrategy::kDumpState) {
      state_mb += op.max_state_mb * pos.progress;
    } else {
      // Per-dimension rollback (mirrors QueryExecution::BeginSuspend):
      // each dimension rolls back to the checkpoint only if it is ahead.
      double c = LastCheckpointAt(pos.progress, op.checkpoint_fraction);
      double later_cpu = 0.0;
      double later_io = 0.0;
      for (size_t i = pos.index + 1; i < plan.operators.size(); ++i) {
        later_cpu += plan.operators[i].cpu_seconds;
        later_io += plan.operators[i].io_ops;
      }
      double rem_cpu_in_op =
          std::max(0.0, progress.remaining_cpu - later_cpu);
      double rem_io_in_op = std::max(0.0, progress.remaining_io - later_io);
      est.redo_cpu = std::max(
          0.0, (1.0 - c) * op.cpu_seconds - rem_cpu_in_op);
      est.redo_io = std::max(0.0, (1.0 - c) * op.io_ops - rem_io_in_op);
    }
  }
  est.suspend_io = state_mb * io_ops_per_mb;
  est.resume_io = state_mb * io_ops_per_mb;
  return est;
}

SuspendStrategy ChooseSuspendStrategy(const Plan& plan,
                                      const ExecutionProgress& progress,
                                      double io_ops_per_mb, double io_rate,
                                      double suspend_io_budget) {
  SuspendCostEstimate dump = EstimateSuspendCost(
      plan, progress, SuspendStrategy::kDumpState, io_ops_per_mb, io_rate);
  SuspendCostEstimate goback = EstimateSuspendCost(
      plan, progress, SuspendStrategy::kGoBack, io_ops_per_mb, io_rate);
  bool dump_fits = dump.suspend_io <= suspend_io_budget;
  bool goback_fits = goback.suspend_io <= suspend_io_budget;
  if (dump_fits && goback_fits) {
    return dump.TotalOverhead(io_rate) <= goback.TotalOverhead(io_rate)
               ? SuspendStrategy::kDumpState
               : SuspendStrategy::kGoBack;
  }
  if (dump_fits) return SuspendStrategy::kDumpState;
  return SuspendStrategy::kGoBack;  // cheapest suspend as fallback
}

SuspendResumeController::SuspendResumeController()
    : SuspendResumeController(Config()) {}

SuspendResumeController::SuspendResumeController(Config config)
    : config_(config) {}

void SuspendResumeController::OnSample(const SystemIndicators& indicators,
                                       WorkloadManager& manager) {
  if (indicators.cpu_utilization < config_.min_cpu_utilization) return;
  // Count high-priority demand waiting in the queue.
  int waiting_high = 0;
  for (const Request* r : manager.Queued()) {
    if (r->priority >= config_.trigger_priority &&
        r->state == RequestState::kQueued) {
      ++waiting_high;
    }
  }
  if (waiting_high == 0) return;

  // Victims: lowest priority first, then least progress (cheapest loss).
  std::vector<std::pair<const Request*, ExecutionProgress>> victims;
  for (const ExecutionProgress& p : manager.engine()->Snapshot()) {
    if (p.suspending) continue;
    const Request* request = manager.Find(p.id);
    if (request == nullptr) continue;
    if (request->priority > config_.victim_max_priority) continue;
    if (p.fraction_done > config_.max_victim_fraction_done) continue;
    if (request->suspend_count >= config_.max_suspends_per_query) continue;
    victims.emplace_back(request, p);
  }
  std::sort(victims.begin(), victims.end(),
            [](const auto& a, const auto& b) {
              if (a.first->priority != b.first->priority) {
                return a.first->priority < b.first->priority;
              }
              return a.second.fraction_done < b.second.fraction_done;
            });

  int to_suspend = std::min<int>(waiting_high, static_cast<int>(victims.size()));
  double io_per_mb = manager.engine()->config().io_ops_per_mb;
  double io_rate = manager.engine()->config().io_ops_per_second;
  for (int i = 0; i < to_suspend; ++i) {
    const Request* request = victims[i].first;
    SuspendStrategy strategy = config_.strategy;
    if (config_.auto_choose) {
      strategy = ChooseSuspendStrategy(request->plan, victims[i].second,
                                       io_per_mb, io_rate,
                                       config_.suspend_io_budget);
    }
    if (manager.SuspendRequest(request->spec.id, strategy).ok()) {
      ++suspensions_;
    }
  }
}

SuspendedResumeGate::SuspendedResumeGate()
    : SuspendedResumeGate(Config()) {}

SuspendedResumeGate::SuspendedResumeGate(Config config) : config_(config) {}

bool SuspendedResumeGate::AllowDispatch(const Request& request,
                                        const WorkloadManager& manager) {
  if (request.state != RequestState::kSuspended) return true;
  if (request.priority > config_.victim_max_priority) return true;
  double busy = std::max(manager.engine()->smoothed_cpu_utilization(),
                         manager.engine()->smoothed_io_utilization());
  if (busy < config_.min_cpu_utilization) return true;
  // "High-priority work present" must survive the instants between short
  // transactions: in-flight now, queued, or completing within the last
  // monitor interval.
  bool high_present = false;
  for (const Request* r : manager.Running()) {
    if (r->priority >= config_.trigger_priority) {
      high_present = true;
      break;
    }
  }
  if (!high_present) {
    for (const Request* r : manager.Queued()) {
      if (r->priority >= config_.trigger_priority &&
          r->state == RequestState::kQueued) {
        high_present = true;
        break;
      }
    }
  }
  if (!high_present) {
    for (const auto& [name, def] : manager.workloads()) {
      if (def.priority < config_.trigger_priority) continue;
      if (manager.monitor()->tag_stats(name).last_interval_throughput >
          0.0) {
        high_present = true;
        break;
      }
    }
  }
  if (high_present) {
    ++holds_;
    return false;
  }
  return true;
}

TechniqueInfo SuspendedResumeGate::info() const {
  TechniqueInfo info;
  info.name = "Suspended-query resume gate";
  info.technique_class = TechniqueClass::kExecutionControl;
  info.subclass = TechniqueSubclass::kSuspendResume;
  info.description =
      "Holds suspended low-priority queries in the wait queue until the "
      "high-priority work that triggered their suspension has completed.";
  info.source = "Chandramouli et al. [10]";
  return info;
}

TechniqueInfo SuspendResumeController::info() const {
  TechniqueInfo info;
  info.name = "Query suspend-and-resume";
  info.technique_class = TechniqueClass::kExecutionControl;
  info.subclass = TechniqueSubclass::kSuspendResume;
  info.description =
      "Quickly suspends running low-priority queries when high-priority "
      "work is waiting, persisting enough state to resume them later; "
      "strategy chosen to minimize suspend+resume overhead within a "
      "suspend-cost budget.";
  info.source = "Chandramouli et al. [10], Chaudhuri et al. [12]";
  return info;
}

}  // namespace wlm
