#ifndef WLM_EXECUTION_TIMEOUT_ESCALATION_H_
#define WLM_EXECUTION_TIMEOUT_ESCALATION_H_

#include <map>
#include <string>
#include <unordered_map>

#include "core/interfaces.h"
#include "engine/execution.h"

namespace wlm {

/// Per-class execution timeouts with a three-rung escalation ladder:
/// a query that overstays its workload's soft timeout is first throttled,
/// then suspended, and finally killed — each rung releasing progressively
/// more resources while giving the query progressively less chance to
/// finish on its own. This is the resilience building block the chaos
/// drills lean on: under a fault window long queries degrade gracefully
/// instead of holding the system hostage until a hard kill.
class TimeoutEscalationController : public ExecutionController {
 public:
  /// One workload class's ladder. Rungs with limit 0 are skipped; a
  /// query's current-run elapsed time is compared against each enabled
  /// rung in order (throttle < suspend < kill expected, not enforced).
  struct Policy {
    /// Rung 1: past this many seconds the query runs at `throttle_duty`.
    double throttle_after_seconds = 0.0;
    double throttle_duty = 0.5;
    /// Rung 2: past this the query is suspended (state spilled; it
    /// requeues and the ladder restarts on its next run).
    double suspend_after_seconds = 0.0;
    SuspendStrategy suspend_strategy = SuspendStrategy::kDumpState;
    /// Rung 3: past this the query is killed.
    double kill_after_seconds = 0.0;
    /// Resubmit kill victims instead of discarding them.
    bool resubmit_on_kill = false;
    /// Deadline rung: kill a running query once the sim clock passes its
    /// Request::deadline by `deadline_grace_seconds` — it can no longer
    /// meet its SLO, so every further second it runs is stolen from
    /// queries that still can. Requests without a deadline are exempt.
    bool kill_past_deadline = false;
    double deadline_grace_seconds = 0.0;
  };

  struct Config {
    /// Ladder applied to workloads without an explicit entry; rungs all
    /// zero = unmanaged.
    Policy default_policy;
    std::map<std::string, Policy> per_workload;
  };

  explicit TimeoutEscalationController(Config config);

  void OnSample(const SystemIndicators& indicators,
                WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  int64_t throttles() const { return throttles_; }
  int64_t suspends() const { return suspends_; }
  int64_t kills() const { return kills_; }
  int64_t deadline_kills() const { return deadline_kills_; }

 private:
  enum class Stage { kNone, kThrottled, kSuspending, kKilled };

  /// Highest rung applied, pinned to one engine run: `dispatch_time`
  /// identifies the run, so after a suspend-resume cycle (new dispatch
  /// time, elapsed reset) the ladder restarts from the bottom rung.
  struct LadderState {
    Stage stage = Stage::kNone;
    double dispatch_time = -1.0;
  };

  const Policy& PolicyFor(const std::string& workload) const;

  Config config_;
  std::unordered_map<QueryId, LadderState> stages_;
  int64_t throttles_ = 0;
  int64_t suspends_ = 0;
  int64_t kills_ = 0;
  int64_t deadline_kills_ = 0;
};

}  // namespace wlm

#endif  // WLM_EXECUTION_TIMEOUT_ESCALATION_H_
