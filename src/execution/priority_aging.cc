#include "execution/priority_aging.h"

#include <algorithm>
#include <cmath>

#include "core/workload_manager.h"

namespace wlm {

PriorityAgingController::PriorityAgingController()
    : PriorityAgingController(Config()) {}

PriorityAgingController::PriorityAgingController(Config config)
    : config_(std::move(config)) {}

void PriorityAgingController::OnSample(const SystemIndicators& indicators,
                                       WorkloadManager& manager) {
  (void)indicators;
  for (const ExecutionProgress& p : manager.engine()->Snapshot()) {
    const Request* request = manager.Find(p.id);
    if (request == nullptr) continue;
    if (!config_.workloads.empty() &&
        config_.workloads.count(request->workload) == 0) {
      continue;
    }

    int needed = 0;
    if (p.elapsed > config_.elapsed_threshold_seconds) {
      needed = 1;
      if (config_.repeat_every_seconds > 0.0) {
        needed += static_cast<int>(
            std::floor((p.elapsed - config_.elapsed_threshold_seconds) /
                       config_.repeat_every_seconds));
      }
    }
    if (config_.rows_threshold > 0 && p.rows_emitted > config_.rows_threshold) {
      needed = std::max(needed, 1);
    }
    int& applied = applied_[p.id];
    if (needed <= applied) continue;

    int target_level =
        static_cast<int>(request->priority) - (needed - applied);
    target_level =
        std::max(target_level, static_cast<int>(config_.floor));
    if (target_level < static_cast<int>(request->priority) &&
        manager
            .SetRequestPriority(p.id,
                                static_cast<BusinessPriority>(target_level))
            .ok()) {
      ++demotions_;
    }
    applied = needed;
  }
}

TechniqueInfo PriorityAgingController::info() const {
  TechniqueInfo info;
  info.name = "Priority aging";
  info.technique_class = TechniqueClass::kExecutionControl;
  info.subclass = TechniqueSubclass::kReprioritization;
  info.description =
      "Demotes the resource-access priority of requests whose running "
      "time or returned rows violate their thresholds, one service level "
      "per violation.";
  info.source = "DB2 WLM [9][30]";
  return info;
}

}  // namespace wlm
