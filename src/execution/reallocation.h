#ifndef WLM_EXECUTION_REALLOCATION_H_
#define WLM_EXECUTION_REALLOCATION_H_

#include <map>
#include <string>
#include <vector>

#include "control/utility.h"
#include "core/interfaces.h"

namespace wlm {

/// Policy-driven resource reallocation via economic models (Table 3 row 2;
/// Boughton/Martin/Zhang et al. [4][46][78]): workloads are market
/// consumers whose wealth reflects business importance; every control
/// interval the Fisher-market equilibrium reallocates CPU and I/O shares
/// among the workloads that currently have running queries. Changing a
/// workload's wealth at runtime immediately shifts resources — the
/// "dynamic response to importance changes" the approach demonstrates.
class EconomicReallocationController : public ExecutionController {
 public:
  struct Participant {
    std::string workload;
    double wealth = 1.0;
    double alpha_cpu = 0.5;
    double alpha_io = 0.5;
  };
  struct Config {
    std::vector<Participant> participants;
    /// Engine weights are equilibrium shares scaled by this (weights are
    /// relative, the scale just keeps numbers readable).
    double weight_scale = 10.0;
  };

  explicit EconomicReallocationController(Config config);

  void OnSample(const SystemIndicators& indicators,
                WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  /// Runtime importance change.
  Status SetWealth(const std::string& workload, double wealth);
  /// Last computed equilibrium share for a workload.
  ResourceAllocation LastAllocation(const std::string& workload) const;

 private:
  Config config_;
  std::map<std::string, ResourceAllocation> last_;
};

}  // namespace wlm

#endif  // WLM_EXECUTION_REALLOCATION_H_
