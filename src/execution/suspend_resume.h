#ifndef WLM_EXECUTION_SUSPEND_RESUME_H_
#define WLM_EXECUTION_SUSPEND_RESUME_H_

#include <limits>
#include <string>
#include <unordered_map>

#include "core/interfaces.h"
#include "engine/execution.h"
#include "engine/plan.h"

namespace wlm {

/// Pre-suspension cost estimate for one strategy, derived from the plan
/// and a progress snapshot (the model behind Chandramouli et al.'s
/// optimal-suspend-plan search [10]).
struct SuspendCostEstimate {
  SuspendStrategy strategy = SuspendStrategy::kDumpState;
  double suspend_io = 0.0;
  double resume_io = 0.0;
  double redo_cpu = 0.0;
  double redo_io = 0.0;
  /// Total overhead in work units (cpu + io/io_rate) — the objective the
  /// suspend-plan optimization minimizes.
  double TotalOverhead(double io_rate) const {
    return redo_cpu + (suspend_io + resume_io + redo_io) / io_rate;
  }
};

/// Estimates suspend/resume costs of `strategy` for a query at the state
/// described by `progress` (without suspending it). Mirrors the engine's
/// BeginSuspend accounting.
SuspendCostEstimate EstimateSuspendCost(const Plan& plan,
                                        const ExecutionProgress& progress,
                                        SuspendStrategy strategy,
                                        double io_ops_per_mb, double io_rate);

/// Chooses the strategy minimizing total overhead subject to a suspend-IO
/// budget (the "minimize suspend/resume overhead while meeting a given
/// suspend cost constraint" optimization). Falls back to GoBack (cheapest
/// suspend) when nothing fits the budget.
SuspendStrategy ChooseSuspendStrategy(const Plan& plan,
                                      const ExecutionProgress& progress,
                                      double io_ops_per_mb, double io_rate,
                                      double suspend_io_budget);

/// Query suspend-and-resume execution control (Table 3 row 4 [10][12]):
/// when high-priority requests are waiting and the system is loaded,
/// quickly suspends running low-priority queries; the suspended queries
/// re-enter the wait queue and resume when dispatched again (i.e., when
/// the high-priority burst has drained, given a priority-aware scheduler).
class SuspendResumeController : public ExecutionController {
 public:
  struct Config {
    /// Queued requests at or above this priority trigger suspension.
    BusinessPriority trigger_priority = BusinessPriority::kHigh;
    /// Only running queries at or below this priority are victims.
    BusinessPriority victim_max_priority = BusinessPriority::kLow;
    /// Strategy; when `auto_choose` the controller runs the cost
    /// optimization per victim instead.
    SuspendStrategy strategy = SuspendStrategy::kDumpState;
    bool auto_choose = false;
    double suspend_io_budget = std::numeric_limits<double>::infinity();
    /// Don't bother suspending nearly finished queries.
    double max_victim_fraction_done = 0.9;
    /// Per-query suspension cap (avoid thrashing a query in and out).
    int max_suspends_per_query = 2;
    /// Engine must be at least this busy for suspension to trigger.
    double min_cpu_utilization = 0.5;
  };

  SuspendResumeController();
  explicit SuspendResumeController(Config config);

  void OnSample(const SystemIndicators& indicators,
                WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  int64_t suspensions() const { return suspensions_; }

 private:
  Config config_;
  int64_t suspensions_ = 0;
};

/// Companion dispatch gate for SuspendResumeController: holds *suspended*
/// low-priority requests in the wait queue while high-priority work is
/// still present and the system is busy, so they "resume when the
/// high-priority work has completed" [10] instead of bouncing straight
/// back into the storm they were suspended for.
class SuspendedResumeGate : public AdmissionController {
 public:
  struct Config {
    BusinessPriority trigger_priority = BusinessPriority::kHigh;
    BusinessPriority victim_max_priority = BusinessPriority::kLow;
    /// Resume is only held while the engine is at least this busy.
    double min_cpu_utilization = 0.5;
  };

  SuspendedResumeGate();
  explicit SuspendedResumeGate(Config config);

  bool AllowDispatch(const Request& request,
                     const WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  int64_t holds() const { return holds_; }

 private:
  Config config_;
  int64_t holds_ = 0;
};

}  // namespace wlm

#endif  // WLM_EXECUTION_SUSPEND_RESUME_H_
