#include "execution/fuzzy_controller.h"

#include <algorithm>
#include <array>

#include "core/workload_manager.h"

namespace wlm {

double RampUp(double x, double a, double b) {
  if (x <= a) return 0.0;
  if (x >= b) return 1.0;
  return (x - a) / (b - a);
}

double RampDown(double x, double a, double b) { return 1.0 - RampUp(x, a, b); }

double Triangular(double x, double a, double b, double c) {
  if (x <= a || x >= c) return 0.0;
  if (x <= b) return (x - a) / (b - a);
  return (c - x) / (c - b);
}

const char* FuzzyActionToString(FuzzyAction a) {
  switch (a) {
    case FuzzyAction::kContinue:
      return "continue";
    case FuzzyAction::kReprioritize:
      return "reprioritize";
    case FuzzyAction::kKill:
      return "kill";
    case FuzzyAction::kKillResubmit:
      return "kill-and-resubmit";
  }
  return "?";
}

FuzzyExecutionController::FuzzyExecutionController()
    : FuzzyExecutionController(Config()) {}

FuzzyExecutionController::FuzzyExecutionController(Config config)
    : config_(std::move(config)) {}

FuzzyAction FuzzyExecutionController::Decide(double overrun, double progress,
                                             bool high_priority) const {
  // Input fuzzification.
  double ok = RampDown(overrun, config_.overrun_ok, config_.overrun_long);
  double over_long = Triangular(overrun, config_.overrun_ok,
                                config_.overrun_long, config_.overrun_huge);
  double huge =
      RampUp(overrun, config_.overrun_long, config_.overrun_huge);
  double prog_low =
      RampDown(progress, config_.progress_low, config_.progress_high);
  double prog_high =
      RampUp(progress, config_.progress_low, config_.progress_high);
  double pri_high = high_priority ? 1.0 : 0.0;
  double pri_low = 1.0 - pri_high;

  // Rule base (max-min inference). Scores per action.
  std::array<double, 4> score{};  // indexed by FuzzyAction
  auto fire = [&](FuzzyAction action, double strength) {
    score[static_cast<size_t>(action)] =
        std::max(score[static_cast<size_t>(action)], strength);
  };
  auto all = [](double a, double b) { return std::min(a, b); };

  // R1: on-estimate queries run on.
  fire(FuzzyAction::kContinue, ok);
  // R2: overrunning high-priority queries are tolerated.
  fire(FuzzyAction::kContinue, all(over_long, pri_high));
  // R3: overrunning low-priority queries that are nearly done may finish.
  fire(FuzzyAction::kContinue, all(over_long, all(pri_low, prog_high)));
  // R4: overrunning low-priority early queries get demoted.
  fire(FuzzyAction::kReprioritize, all(over_long, all(pri_low, prog_low)));
  // R5: way-over queries that are nearly done get demoted, not killed
  //     (killing would waste almost-complete work).
  fire(FuzzyAction::kReprioritize, all(huge, prog_high));
  // R6: way-over high-priority queries get demoted rather than killed.
  fire(FuzzyAction::kReprioritize, all(huge, pri_high));
  // R7: way-over low-priority queries early in their plan are killed and
  //     resubmitted for a quieter time.
  fire(FuzzyAction::kKillResubmit, all(huge, all(pri_low, prog_low)));

  // Defuzzification: the strongest action wins; ties resolve to the least
  // severe action (array order is severity order).
  size_t best = 0;
  for (size_t i = 1; i < score.size(); ++i) {
    if (score[i] > score[best]) best = i;
  }
  return static_cast<FuzzyAction>(best);
}

void FuzzyExecutionController::OnSample(const SystemIndicators& indicators,
                                        WorkloadManager& manager) {
  (void)indicators;
  std::vector<std::pair<QueryId, FuzzyAction>> actions;
  for (const ExecutionProgress& p : manager.engine()->Snapshot()) {
    if (p.elapsed < config_.min_elapsed_seconds) continue;
    const Request* request = manager.Find(p.id);
    if (request == nullptr) continue;
    if (!config_.workloads.empty() &&
        config_.workloads.count(request->workload) == 0) {
      continue;
    }
    double est = std::max(1e-3, request->plan.est_elapsed_seconds);
    double overrun = p.elapsed / est;
    bool high = request->priority >= config_.high_priority_cut;
    FuzzyAction action = Decide(overrun, p.fraction_done, high);
    if (action != FuzzyAction::kContinue) actions.emplace_back(p.id, action);
  }

  for (const auto& [id, action] : actions) {
    const Request* request = manager.Find(id);
    if (request == nullptr) continue;
    switch (action) {
      case FuzzyAction::kReprioritize: {
        int& times = reprioritized_[id];
        if (times >= config_.max_reprioritizations) break;
        int level = static_cast<int>(request->priority);
        if (level > static_cast<int>(BusinessPriority::kBackground) &&
            manager
                .SetRequestPriority(id,
                                    static_cast<BusinessPriority>(level - 1))
                .ok()) {
          ++times;
          ++reprioritizations_;
        }
        break;
      }
      case FuzzyAction::kKill:
        if (manager.KillRequest(id, false).ok()) ++kills_;
        break;
      case FuzzyAction::kKillResubmit:
        if (manager.KillRequest(id, true).ok()) ++resubmit_kills_;
        break;
      case FuzzyAction::kContinue:
        break;
    }
  }
}

TechniqueInfo FuzzyExecutionController::info() const {
  TechniqueInfo info;
  info.name = "Fuzzy-logic execution controller";
  info.technique_class = TechniqueClass::kExecutionControl;
  info.subclass = TechniqueSubclass::kCancellation;
  info.description =
      "Rule-based fuzzy controller over relative overrun, progress and "
      "priority choosing among continue, reprioritize, kill and "
      "kill-and-resubmit for problematic warehouse queries.";
  info.source = "Krompass et al. [39]";
  return info;
}

}  // namespace wlm
