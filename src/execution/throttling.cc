#include "execution/throttling.h"

#include <algorithm>

#include "core/workload_manager.h"

namespace wlm {

UtilityThrottleController::UtilityThrottleController()
    : UtilityThrottleController(Config()) {}

UtilityThrottleController::UtilityThrottleController(Config config)
    : config_(config),
      pi_(config.kp, config.ki, 0.0, config.max_throttle) {}

void UtilityThrottleController::OnSample(const SystemIndicators& indicators,
                                         WorkloadManager& manager) {
  (void)indicators;
  const TagStats& production =
      manager.monitor()->tag_stats(config_.production_workload);
  if (production.recent_velocity.empty()) return;  // no signal yet
  // Velocity baseline in an unloaded system is 1.0 by construction; the
  // degradation limit defines the setpoint.
  double setpoint = config_.degradation_limit;
  double measured = production.recent_velocity.value();
  // Positive error (production below goal) raises the throttle.
  double error = setpoint - measured;
  throttle_ = pi_.Update(error, manager.monitor()->interval());

  double duty = std::max(0.05, 1.0 - throttle_);
  for (const Request* r : manager.Running()) {
    if (r->workload == config_.utility_workload) {
      (void)manager.ThrottleRequest(r->spec.id, duty);
    }
  }
}

TechniqueInfo UtilityThrottleController::info() const {
  TechniqueInfo info;
  info.name = "Utility throttling (PI controller)";
  info.technique_class = TechniqueClass::kExecutionControl;
  info.subclass = TechniqueSubclass::kThrottling;
  info.description =
      "Self-imposed sleep slows online utilities; a Proportional-"
      "Integral controller sets the amount of throttling from the "
      "observed degradation of production work.";
  info.source = "Parekh et al. [64]";
  return info;
}

QueryThrottleController::QueryThrottleController()
    : QueryThrottleController(Config()) {}

QueryThrottleController::QueryThrottleController(Config config)
    : config_(config),
      step_(config.initial_step, 0.0, config.max_throttle),
      blackbox_(0.0, config.max_throttle, config.initial_step) {}

void QueryThrottleController::OnSample(const SystemIndicators& indicators,
                                       WorkloadManager& manager) {
  (void)indicators;
  const TagStats& protected_stats =
      manager.monitor()->tag_stats(config_.protected_workload);
  if (protected_stats.recent_response.empty()) return;
  double measured = protected_stats.recent_response.value();

  if (config_.controller == ControllerKind::kStep) {
    // Positive error = protected workload too slow = throttle harder.
    double error = measured - config_.target_response_seconds;
    throttle_ =
        step_.Update(error, 0.15 * config_.target_response_seconds);
  } else {
    throttle_ = blackbox_.Update(measured, config_.target_response_seconds);
  }

  for (const Request* r : manager.Running()) {
    if (r->workload != config_.victim_workload) continue;
    if (config_.method == Method::kConstant) {
      (void)manager.ThrottleRequest(r->spec.id, std::max(0.05, 1.0 - throttle_));
    } else {
      // Interrupt throttling: one pause per victim, sized by the current
      // throttling amount.
      if (interrupted_.insert(r->spec.id).second && throttle_ > 0.01) {
        (void)manager.PauseRequest(
            r->spec.id, throttle_ * config_.interrupt_horizon_seconds);
      }
    }
  }
}

TechniqueInfo QueryThrottleController::info() const {
  TechniqueInfo info;
  info.name = config_.controller == ControllerKind::kStep
                  ? "Query throttling (step controller)"
                  : "Query throttling (black-box controller)";
  info.technique_class = TechniqueClass::kExecutionControl;
  info.subclass = TechniqueSubclass::kThrottling;
  info.description =
      "Slows large queries with constant (duty-cycle) or interrupt "
      "(single long pause) self-imposed sleeps so high-priority work "
      "meets its service-level objectives.";
  info.source = "Powley et al. [65][66]";
  return info;
}

}  // namespace wlm
