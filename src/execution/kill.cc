#include "execution/kill.h"

#include <vector>

#include "core/workload_manager.h"

namespace wlm {

QueryKillController::QueryKillController()
    : QueryKillController(Config()) {}

QueryKillController::QueryKillController(Config config)
    : config_(std::move(config)) {}

void QueryKillController::OnSample(const SystemIndicators& indicators,
                                   WorkloadManager& manager) {
  (void)indicators;
  std::vector<QueryId> victims;
  for (const ExecutionProgress& p : manager.engine()->Snapshot()) {
    const Request* request = manager.Find(p.id);
    if (request == nullptr) continue;
    if (request->priority > config_.max_victim_priority) continue;
    if (!config_.workloads.empty() &&
        config_.workloads.count(request->workload) == 0) {
      continue;
    }
    bool over_absolute = config_.max_elapsed_seconds > 0.0 &&
                         p.elapsed > config_.max_elapsed_seconds;
    bool over_relative =
        config_.overrun_factor > 0.0 &&
        request->plan.est_elapsed_seconds > 0.0 &&
        p.elapsed > config_.overrun_factor * request->plan.est_elapsed_seconds;
    if (over_absolute || over_relative) victims.push_back(p.id);
  }
  for (QueryId id : victims) {
    if (manager.KillRequest(id, config_.resubmit).ok()) ++kills_;
  }
}

TechniqueInfo QueryKillController::info() const {
  TechniqueInfo info;
  info.name = config_.resubmit ? "Query kill-and-resubmit" : "Query kill";
  info.technique_class = TechniqueClass::kExecutionControl;
  info.subclass = TechniqueSubclass::kCancellation;
  info.description =
      "Terminates running queries whose elapsed time violates absolute "
      "or estimate-relative limits, releasing their resources "
      "immediately; optionally requeues them for later execution.";
  info.source = "DB2/SQL Server/Oracle/Teradata [30][50][61][72], "
                "Krompass et al. [39]";
  return info;
}

}  // namespace wlm
