#include "execution/progress_control.h"

#include <vector>

#include "core/workload_manager.h"

namespace wlm {

ProgressAwareController::ProgressAwareController(double io_ops_per_second,
                                                 Config config)
    : config_(config), tracker_(io_ops_per_second) {}

void ProgressAwareController::OnSample(const SystemIndicators& indicators,
                                       WorkloadManager& manager) {
  (void)indicators;
  double now = manager.sim()->Now();
  std::vector<std::pair<QueryId, bool>> actions;  // (id, kill?)
  for (const ExecutionProgress& p : manager.engine()->Snapshot()) {
    tracker_.Observe(p, now);
    const Request* request = manager.Find(p.id);
    if (request == nullptr) continue;
    if (request->priority > config_.max_victim_priority) continue;
    if (!config_.workloads.empty() &&
        config_.workloads.count(request->workload) == 0) {
      continue;
    }
    if (p.fraction_done >= config_.spare_fraction) continue;
    double remaining = tracker_.EstimateRemainingSeconds(p);
    if (remaining >
        config_.remaining_budget_seconds * config_.kill_factor) {
      actions.emplace_back(p.id, true);
    } else if (remaining > config_.remaining_budget_seconds &&
               p.duty >= 1.0) {
      actions.emplace_back(p.id, false);
    }
  }
  for (const auto& [id, kill] : actions) {
    if (kill) {
      if (manager.KillRequest(id, config_.resubmit).ok()) {
        tracker_.Forget(id);
        ++kills_;
      }
    } else {
      if (manager.ThrottleRequest(id, config_.throttle_duty).ok()) {
        ++throttled_;
      }
    }
  }
}

TechniqueInfo ProgressAwareController::info() const {
  TechniqueInfo info;
  info.name = "Progress-indicator execution control";
  info.technique_class = TechniqueClass::kExecutionControl;
  info.subclass = TechniqueSubclass::kCancellation;
  info.description =
      "Uses a query progress indicator (remaining work / observed speed) "
      "instead of manual time thresholds: throttles queries with large "
      "estimated remaining time, kills runaways, and spares nearly-done "
      "queries that a time threshold would needlessly terminate.";
  info.source = "Chaudhuri et al. [11], Lee et al. [41], Li et al. [43], "
                "Luo et al. [45]";
  return info;
}

}  // namespace wlm
