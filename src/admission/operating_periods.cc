#include "admission/operating_periods.h"

#include <cassert>
#include <cmath>

#include "core/workload_manager.h"

namespace wlm {

OperatingPeriodAdmission::OperatingPeriodAdmission(Config config)
    : config_(std::move(config)) {
  assert(config_.day_length > 0.0);
}

const OperatingPeriodAdmission::Period*
OperatingPeriodAdmission::ActivePeriod(double now) const {
  double tod = std::fmod(now, config_.day_length);
  for (const Period& period : config_.periods) {
    bool inside;
    if (period.start <= period.end) {
      inside = tod >= period.start && tod < period.end;
    } else {
      inside = tod >= period.start || tod < period.end;  // wraps midnight
    }
    if (inside) return &period;
  }
  return nullptr;
}

Status OperatingPeriodAdmission::OnArrival(const Request& request,
                                           const WorkloadManager& manager) {
  const Period* period = ActivePeriod(manager.sim()->Now());
  if (period == nullptr) return Status::OK();
  if (request.plan.est_timerons > period->max_timerons) {
    ++rejected_;
    return Status::Rejected("estimated cost exceeds the " + period->name +
                            " period threshold");
  }
  return Status::OK();
}

bool OperatingPeriodAdmission::AllowDispatch(const Request& request,
                                             const WorkloadManager& manager) {
  (void)request;
  const Period* period = ActivePeriod(manager.sim()->Now());
  if (period == nullptr || period->max_mpl <= 0) return true;
  return static_cast<int>(manager.running_count()) < period->max_mpl;
}

TechniqueInfo OperatingPeriodAdmission::info() const {
  TechniqueInfo info;
  info.name = "Operating-period thresholds";
  info.technique_class = TechniqueClass::kAdmissionControl;
  info.subclass = TechniqueSubclass::kThresholdBasedAdmission;
  info.description =
      "Admission thresholds (cost ceiling, MPL) that switch with the "
      "operating period — strict during the business day, open during "
      "the night batch window.";
  info.source = "admission control policies, Section 3.2 [9][72]";
  return info;
}

}  // namespace wlm
