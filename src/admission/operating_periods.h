#ifndef WLM_ADMISSION_OPERATING_PERIODS_H_
#define WLM_ADMISSION_OPERATING_PERIODS_H_

#include <limits>
#include <string>
#include <vector>

#include "core/interfaces.h"

namespace wlm {

/// Operating-period admission thresholds (Section 3.2: "The admission
/// control policy may also specify different thresholds for various
/// operating periods, for example during the day or at night"). The
/// simulated clock is folded into a day of `day_length` seconds; each
/// period carries its own cost ceiling and MPL, so e.g. daytime can be
/// strict (small queries only, low BI concurrency) while the nightly
/// batch window opens up.
class OperatingPeriodAdmission : public AdmissionController {
 public:
  struct Period {
    std::string name;
    /// [start, end) in seconds-of-day; wrapping windows (start > end) span
    /// midnight.
    double start = 0.0;
    double end = 0.0;
    double max_timerons = std::numeric_limits<double>::infinity();
    /// 0 = unlimited.
    int max_mpl = 0;
  };
  struct Config {
    double day_length = 86400.0;
    /// Evaluated in order; the first matching period applies. Time not
    /// covered by any period is unrestricted.
    std::vector<Period> periods;
  };

  explicit OperatingPeriodAdmission(Config config);

  /// The period in force at absolute simulated time `now` (nullptr if
  /// uncovered).
  const Period* ActivePeriod(double now) const;

  Status OnArrival(const Request& request,
                   const WorkloadManager& manager) override;
  bool AllowDispatch(const Request& request,
                     const WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  int64_t rejected_count() const { return rejected_; }

 private:
  Config config_;
  int64_t rejected_ = 0;
};

}  // namespace wlm

#endif  // WLM_ADMISSION_OPERATING_PERIODS_H_
