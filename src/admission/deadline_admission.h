#ifndef WLM_ADMISSION_DEADLINE_ADMISSION_H_
#define WLM_ADMISSION_DEADLINE_ADMISSION_H_

#include <cstdint>

#include "core/interfaces.h"

namespace wlm {

/// Deadline-feasibility admission: rejects an arriving request whose
/// deadline is already unreachable — the optimizer's standalone elapsed
/// estimate does not fit between now and Request::deadline. This is the
/// admission-control face of deadline propagation: with WiSeDB-style
/// SLA-aware placement in mind, work that cannot meet its SLA is cheapest
/// to refuse before it consumes a queue slot. Requests without a deadline
/// always pass.
class DeadlineFeasibilityAdmission : public AdmissionController {
 public:
  struct Config {
    /// Safety margin: the estimate must fit with this many extra seconds
    /// to spare (guards against optimistic optimizer estimates).
    double min_slack_seconds = 0.0;
    /// Pessimism multiplier applied to the elapsed estimate (>1 rejects
    /// earlier under load-prone estimates; 1 trusts the optimizer).
    double estimate_inflation = 1.0;
  };

  DeadlineFeasibilityAdmission();
  explicit DeadlineFeasibilityAdmission(Config config);

  Status OnArrival(const Request& request,
                   const WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  int64_t rejected_count() const { return rejected_; }

 private:
  Config config_;
  int64_t rejected_ = 0;
};

}  // namespace wlm

#endif  // WLM_ADMISSION_DEADLINE_ADMISSION_H_
