#ifndef WLM_ADMISSION_THRESHOLD_ADMISSION_H_
#define WLM_ADMISSION_THRESHOLD_ADMISSION_H_

#include <limits>
#include <map>
#include <string>

#include "common/stats.h"
#include "core/interfaces.h"

namespace wlm {

/// Query-cost threshold admission (Table 2 row 1; DB2/SQL-Server/Teradata
/// style [9][50][72]): an arriving query whose estimated cost exceeds the
/// threshold is rejected (or held for an off-peak operating period).
/// Thresholds may differ per workload and per operating period, as the
/// paper's admission-control policies describe.
class QueryCostAdmission : public AdmissionController {
 public:
  struct Config {
    /// Default cost ceiling, timerons; infinity disables.
    double max_timerons = std::numeric_limits<double>::infinity();
    /// Optional ceiling on the optimizer's estimated elapsed seconds
    /// (the SQL Server "query governor cost limit" flavour).
    double max_est_seconds = std::numeric_limits<double>::infinity();
    /// Per-workload overrides of max_timerons.
    std::map<std::string, double> per_workload_timerons;
    /// When true, over-threshold queries are *held in the queue* until an
    /// off-peak window instead of rejected ("queued for later admission").
    bool queue_instead_of_reject = false;
    /// Off-peak window (simulated seconds-of-day within `day_length`)
    /// during which held queries may dispatch. Only used when queueing.
    double offpeak_start = 0.0;
    double offpeak_end = 0.0;
    double day_length = 86400.0;
  };

  explicit QueryCostAdmission(Config config);

  Status OnArrival(const Request& request,
                   const WorkloadManager& manager) override;
  bool AllowDispatch(const Request& request,
                     const WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  int64_t rejected_count() const { return rejected_; }

 private:
  double ThresholdFor(const Request& request) const;
  bool OverThreshold(const Request& request) const;
  bool InOffpeakWindow(double now) const;

  Config config_;
  int64_t rejected_ = 0;
};

/// MPL threshold admission (Table 2 row 2): caps the number of requests
/// running concurrently, globally and/or per workload. Arrivals are never
/// rejected — they queue until concurrency headroom exists.
class MplAdmission : public AdmissionController {
 public:
  struct Config {
    int max_mpl = 0;  // <= 0 disables the global cap
    std::map<std::string, int> per_workload_mpl;
  };

  explicit MplAdmission(Config config);

  bool AllowDispatch(const Request& request,
                     const WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  /// Lets feedback schedulers retune the global cap.
  void set_max_mpl(int mpl) { config_.max_mpl = mpl; }
  int max_mpl() const { return config_.max_mpl; }

 private:
  Config config_;
};

/// Conflict-ratio admission (Moenkeberg & Weikum [56], Table 2 row 3):
/// while the lock conflict ratio exceeds the critical threshold, new
/// transactions are held in the queue; they dispatch once contention
/// subsides.
class ConflictRatioAdmission : public AdmissionController {
 public:
  /// 1.3 is the paper's classic critical conflict-ratio value.
  explicit ConflictRatioAdmission(double critical_ratio = 1.3);

  bool AllowDispatch(const Request& request,
                     const WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  int64_t times_suspended_admission() const { return held_; }

 private:
  double critical_ratio_;
  int64_t held_ = 0;
};

/// Throughput-feedback admission (Heiss & Wagner [26], Table 2 row 4):
/// hill-climbs the allowed concurrency level on the measured throughput
/// gradient — more admissions while throughput rises, fewer once it falls.
class ThroughputFeedbackAdmission : public AdmissionController {
 public:
  struct Config {
    int initial_mpl = 4;
    int min_mpl = 1;
    int max_mpl = 256;
    /// Relative throughput change treated as noise.
    double tolerance = 0.02;
  };

  ThroughputFeedbackAdmission();
  explicit ThroughputFeedbackAdmission(Config config);

  bool AllowDispatch(const Request& request,
                     const WorkloadManager& manager) override;
  void OnSample(const SystemIndicators& indicators,
                WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  int current_mpl() const { return mpl_; }

 private:
  Config config_;
  int mpl_;
  int direction_ = 1;
  double last_throughput_ = -1.0;
  Ewma smoothed_{0.5};
};

/// Indicator-based admission (Zhang et al. [79][80], Table 2 row 5):
/// monitors a set of system health indicators; when any exceeds its
/// threshold, requests at or below `gated_priority` are no longer
/// admitted (held in queue) while high-priority work continues.
class IndicatorAdmission : public AdmissionController {
 public:
  struct Config {
    double max_cpu_utilization = 0.95;
    double max_memory_utilization = 0.95;
    double max_conflict_ratio = 1.3;
    int max_blocked_queries = std::numeric_limits<int>::max();
    /// Requests with priority <= this are gated during congestion.
    BusinessPriority gated_priority = BusinessPriority::kLow;
  };

  IndicatorAdmission();
  explicit IndicatorAdmission(Config config);

  bool AllowDispatch(const Request& request,
                     const WorkloadManager& manager) override;
  void OnSample(const SystemIndicators& indicators,
                WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  bool congested() const { return congested_; }

 private:
  Config config_;
  bool congested_ = false;
};

}  // namespace wlm

#endif  // WLM_ADMISSION_THRESHOLD_ADMISSION_H_
