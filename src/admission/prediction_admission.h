#ifndef WLM_ADMISSION_PREDICTION_ADMISSION_H_
#define WLM_ADMISSION_PREDICTION_ADMISSION_H_

#include <string>
#include <vector>

#include "characterization/features.h"
#include "common/result.h"
#include "core/interfaces.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"

namespace wlm {

/// PQR-style prediction-based admission (Gupta et al. [23]): a decision
/// tree trained on historical executions predicts which *range* (bucket)
/// of execution time an arriving query falls into; queries predicted into
/// a bucket at or above `reject_bucket` are rejected.
class PqrAdmission : public AdmissionController {
 public:
  struct Config {
    /// Bucket upper bounds in seconds, ascending; an implicit last bucket
    /// covers everything above. E.g. {1, 10, 100} makes 4 ranges.
    std::vector<double> bucket_bounds{1.0, 10.0, 100.0};
    /// Queries predicted into bucket index >= this are rejected.
    int reject_bucket = 3;
    DecisionTreeConfig tree;
  };

  PqrAdmission();
  explicit PqrAdmission(Config config);

  /// Adds one historical observation (pre-execution view + actual
  /// elapsed).
  void AddExample(const QuerySpec& spec, const Plan& plan,
                  double elapsed_seconds);
  Status Train();
  bool trained() const { return tree_.fitted(); }
  size_t example_count() const { return training_.size(); }

  /// Predicted bucket index for a query.
  Result<int> PredictBucket(const QuerySpec& spec, const Plan& plan) const;
  int BucketFor(double elapsed_seconds) const;
  int num_buckets() const {
    return static_cast<int>(config_.bucket_bounds.size()) + 1;
  }

  Status OnArrival(const Request& request,
                   const WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  int64_t rejected_count() const { return rejected_; }

 private:
  Config config_;
  Dataset training_{PreExecutionFeatureNames()};
  DecisionTree tree_;
  int64_t rejected_ = 0;
};

/// Similarity-based performance prediction admission (Ganapathi et al.
/// [21], by kNN regression as the KCCA stand-in): predicts the elapsed
/// time of an arriving query from its nearest historical neighbours and
/// rejects queries predicted to run longer than the limit.
class SimilarityAdmission : public AdmissionController {
 public:
  struct Config {
    double max_predicted_seconds = 300.0;
    int k = 5;
  };

  SimilarityAdmission();
  explicit SimilarityAdmission(Config config);

  void AddExample(const QuerySpec& spec, const Plan& plan,
                  double elapsed_seconds);
  Status Train();
  bool trained() const { return knn_.fitted(); }

  /// Predicted elapsed seconds (also useful to schedulers).
  Result<double> PredictElapsed(const QuerySpec& spec,
                                const Plan& plan) const;

  Status OnArrival(const Request& request,
                   const WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  int64_t rejected_count() const { return rejected_; }

 private:
  Config config_;
  Dataset training_{PreExecutionFeatureNames()};
  KnnRegressor knn_;
  int64_t rejected_ = 0;
};

}  // namespace wlm

#endif  // WLM_ADMISSION_PREDICTION_ADMISSION_H_
