#include "admission/prediction_admission.h"

#include <algorithm>
#include <cmath>

#include "core/workload_manager.h"

namespace wlm {

PqrAdmission::PqrAdmission() : PqrAdmission(Config()) {}

PqrAdmission::PqrAdmission(Config config)
    : config_(std::move(config)), tree_(config_.tree) {}

int PqrAdmission::BucketFor(double elapsed_seconds) const {
  auto it = std::lower_bound(config_.bucket_bounds.begin(),
                             config_.bucket_bounds.end(), elapsed_seconds);
  return static_cast<int>(it - config_.bucket_bounds.begin());
}

void PqrAdmission::AddExample(const QuerySpec& spec, const Plan& plan,
                              double elapsed_seconds) {
  training_.Add(PreExecutionFeatures(spec, plan),
                static_cast<double>(BucketFor(elapsed_seconds)));
}

Status PqrAdmission::Train() {
  if (training_.size() < 10) {
    return Status::FailedPrecondition("insufficient training history");
  }
  tree_.Fit(training_);
  return Status::OK();
}

Result<int> PqrAdmission::PredictBucket(const QuerySpec& spec,
                                        const Plan& plan) const {
  if (!tree_.fitted()) return Status::FailedPrecondition("not trained");
  return static_cast<int>(tree_.Predict(PreExecutionFeatures(spec, plan)));
}

Status PqrAdmission::OnArrival(const Request& request,
                               const WorkloadManager& manager) {
  (void)manager;
  if (!tree_.fitted()) return Status::OK();  // fail open until trained
  Result<int> bucket = PredictBucket(request.spec, request.plan);
  if (bucket.ok() && *bucket >= config_.reject_bucket) {
    ++rejected_;
    return Status::Rejected("predicted execution-time range too large");
  }
  return Status::OK();
}

TechniqueInfo PqrAdmission::info() const {
  TechniqueInfo info;
  info.name = "PQR execution-time-range prediction";
  info.technique_class = TechniqueClass::kAdmissionControl;
  info.subclass = TechniqueSubclass::kPredictionBasedAdmission;
  info.description =
      "Decision tree trained on historical executions predicts the "
      "range of a query's execution time before it runs; queries in "
      "excessive ranges are rejected.";
  info.source = "Gupta et al. [23]";
  return info;
}

SimilarityAdmission::SimilarityAdmission()
    : SimilarityAdmission(Config()) {}

SimilarityAdmission::SimilarityAdmission(Config config)
    : config_(config), knn_(config.k) {}

void SimilarityAdmission::AddExample(const QuerySpec& spec, const Plan& plan,
                                     double elapsed_seconds) {
  // Learn log-elapsed: multiplicative errors, heavy tails.
  training_.Add(PreExecutionFeatures(spec, plan),
                std::log1p(elapsed_seconds));
}

Status SimilarityAdmission::Train() {
  if (training_.size() < static_cast<size_t>(config_.k)) {
    return Status::FailedPrecondition("insufficient training history");
  }
  knn_.Fit(training_);
  return Status::OK();
}

Result<double> SimilarityAdmission::PredictElapsed(const QuerySpec& spec,
                                                   const Plan& plan) const {
  if (!knn_.fitted()) return Status::FailedPrecondition("not trained");
  return std::expm1(knn_.Predict(PreExecutionFeatures(spec, plan)));
}

Status SimilarityAdmission::OnArrival(const Request& request,
                                      const WorkloadManager& manager) {
  (void)manager;
  if (!knn_.fitted()) return Status::OK();  // fail open until trained
  Result<double> predicted = PredictElapsed(request.spec, request.plan);
  if (predicted.ok() && *predicted > config_.max_predicted_seconds) {
    ++rejected_;
    return Status::Rejected("predicted elapsed time exceeds limit");
  }
  return Status::OK();
}

TechniqueInfo SimilarityAdmission::info() const {
  TechniqueInfo info;
  info.name = "Similarity-based performance prediction";
  info.technique_class = TechniqueClass::kAdmissionControl;
  info.subclass = TechniqueSubclass::kPredictionBasedAdmission;
  info.description =
      "Predicts an arriving query's elapsed time from the observed "
      "behaviour of its nearest historical neighbours in feature space "
      "and rejects predicted long-runners.";
  info.source = "Ganapathi et al. [21] (kNN stand-in for KCCA)";
  return info;
}

}  // namespace wlm
