#include "admission/deadline_admission.h"

#include "core/workload_manager.h"

namespace wlm {

DeadlineFeasibilityAdmission::DeadlineFeasibilityAdmission()
    : DeadlineFeasibilityAdmission(Config()) {}

DeadlineFeasibilityAdmission::DeadlineFeasibilityAdmission(Config config)
    : config_(config) {}

Status DeadlineFeasibilityAdmission::OnArrival(const Request& request,
                                               const WorkloadManager& manager) {
  if (!request.HasDeadline()) return Status::OK();
  double needed =
      request.plan.est_elapsed_seconds * config_.estimate_inflation +
      config_.min_slack_seconds;
  if (manager.sim()->Now() + needed > request.deadline) {
    ++rejected_;
    return Status::Rejected("deadline unreachable at arrival");
  }
  return Status::OK();
}

TechniqueInfo DeadlineFeasibilityAdmission::info() const {
  TechniqueInfo info;
  info.name = "Deadline feasibility";
  info.technique_class = TechniqueClass::kAdmissionControl;
  info.subclass = TechniqueSubclass::kThresholdBasedAdmission;
  info.description =
      "Rejects arriving requests whose completion deadline is already "
      "unreachable given the optimizer's elapsed-time estimate, so work "
      "guaranteed to miss its SLA never occupies a queue slot.";
  info.source = "SLA-aware admission (WiSeDB [46], Jain et al.)";
  return info;
}

}  // namespace wlm
