#include "admission/threshold_admission.h"

#include <algorithm>
#include <cmath>

#include "core/workload_manager.h"

namespace wlm {

QueryCostAdmission::QueryCostAdmission(Config config)
    : config_(std::move(config)) {}

double QueryCostAdmission::ThresholdFor(const Request& request) const {
  auto it = config_.per_workload_timerons.find(request.workload);
  if (it != config_.per_workload_timerons.end()) return it->second;
  return config_.max_timerons;
}

bool QueryCostAdmission::OverThreshold(const Request& request) const {
  if (request.plan.est_timerons > ThresholdFor(request)) return true;
  if (request.plan.est_elapsed_seconds > config_.max_est_seconds) return true;
  return false;
}

bool QueryCostAdmission::InOffpeakWindow(double now) const {
  if (config_.day_length <= 0.0) return false;
  double tod = std::fmod(now, config_.day_length);
  if (config_.offpeak_start <= config_.offpeak_end) {
    return tod >= config_.offpeak_start && tod < config_.offpeak_end;
  }
  // Window wraps midnight.
  return tod >= config_.offpeak_start || tod < config_.offpeak_end;
}

Status QueryCostAdmission::OnArrival(const Request& request,
                                     const WorkloadManager& manager) {
  (void)manager;
  if (!OverThreshold(request)) return Status::OK();
  if (config_.queue_instead_of_reject) return Status::OK();  // hold later
  ++rejected_;
  return Status::Rejected("estimated cost exceeds admission threshold");
}

bool QueryCostAdmission::AllowDispatch(const Request& request,
                                       const WorkloadManager& manager) {
  if (!config_.queue_instead_of_reject) return true;
  if (!OverThreshold(request)) return true;
  return InOffpeakWindow(manager.sim()->Now());
}

TechniqueInfo QueryCostAdmission::info() const {
  TechniqueInfo info;
  info.name = "Query cost threshold";
  info.technique_class = TechniqueClass::kAdmissionControl;
  info.subclass = TechniqueSubclass::kThresholdBasedAdmission;
  info.description =
      "Rejects (or holds for off-peak) arriving queries whose estimated "
      "cost exceeds the workload's admission threshold.";
  info.source = "DB2 [9], SQL Server Query Governor [50][51], Teradata [72]";
  return info;
}

MplAdmission::MplAdmission(Config config) : config_(std::move(config)) {}

bool MplAdmission::AllowDispatch(const Request& request,
                                 const WorkloadManager& manager) {
  if (config_.max_mpl > 0 &&
      static_cast<int>(manager.running_count()) >= config_.max_mpl) {
    return false;
  }
  auto it = config_.per_workload_mpl.find(request.workload);
  if (it != config_.per_workload_mpl.end() && it->second > 0 &&
      manager.RunningInWorkload(request.workload) >= it->second) {
    return false;
  }
  return true;
}

TechniqueInfo MplAdmission::info() const {
  TechniqueInfo info;
  info.name = "MPL threshold";
  info.technique_class = TechniqueClass::kAdmissionControl;
  info.subclass = TechniqueSubclass::kThresholdBasedAdmission;
  info.description =
      "Holds arrivals in the wait queue while the number of concurrently "
      "running requests has reached the multi-programming level.";
  info.source = "DB2 [9], SQL Server [50], Teradata throttles [72]";
  return info;
}

ConflictRatioAdmission::ConflictRatioAdmission(double critical_ratio)
    : critical_ratio_(critical_ratio) {}

bool ConflictRatioAdmission::AllowDispatch(const Request& request,
                                           const WorkloadManager& manager) {
  (void)request;
  if (manager.engine()->ConflictRatio() > critical_ratio_) {
    ++held_;
    return false;
  }
  return true;
}

TechniqueInfo ConflictRatioAdmission::info() const {
  TechniqueInfo info;
  info.name = "Conflict ratio threshold";
  info.technique_class = TechniqueClass::kAdmissionControl;
  info.subclass = TechniqueSubclass::kThresholdBasedAdmission;
  info.description =
      "Suspends the admission of new transactions while the lock "
      "conflict ratio exceeds the critical threshold.";
  info.source = "Moenkeberg & Weikum [56]";
  return info;
}

ThroughputFeedbackAdmission::ThroughputFeedbackAdmission()
    : ThroughputFeedbackAdmission(Config()) {}

ThroughputFeedbackAdmission::ThroughputFeedbackAdmission(Config config)
    : config_(config), mpl_(config.initial_mpl) {}

bool ThroughputFeedbackAdmission::AllowDispatch(
    const Request& request, const WorkloadManager& manager) {
  (void)request;
  return static_cast<int>(manager.running_count()) < mpl_;
}

void ThroughputFeedbackAdmission::OnSample(const SystemIndicators& indicators,
                                           WorkloadManager& manager) {
  (void)manager;
  smoothed_.Add(indicators.throughput);
  double throughput = smoothed_.value();
  if (last_throughput_ >= 0.0) {
    double delta = throughput - last_throughput_;
    double threshold = config_.tolerance * std::max(last_throughput_, 1e-9);
    if (delta < -threshold) {
      // Throughput fell: reverse course.
      direction_ = -direction_;
    }
    // Rising or flat: keep pushing in the current direction.
    mpl_ = std::clamp(mpl_ + direction_, config_.min_mpl, config_.max_mpl);
  }
  last_throughput_ = throughput;
}

TechniqueInfo ThroughputFeedbackAdmission::info() const {
  TechniqueInfo info;
  info.name = "Transaction throughput feedback";
  info.technique_class = TechniqueClass::kAdmissionControl;
  info.subclass = TechniqueSubclass::kThresholdBasedAdmission;
  info.description =
      "Measures throughput over recent intervals and admits more "
      "transactions while it increases, fewer when it decreases.";
  info.source = "Heiss & Wagner [26]";
  return info;
}

IndicatorAdmission::IndicatorAdmission() : IndicatorAdmission(Config()) {}

IndicatorAdmission::IndicatorAdmission(Config config) : config_(config) {}

void IndicatorAdmission::OnSample(const SystemIndicators& indicators,
                                  WorkloadManager& manager) {
  (void)manager;
  congested_ = indicators.cpu_utilization > config_.max_cpu_utilization ||
               indicators.memory_utilization >
                   config_.max_memory_utilization ||
               indicators.conflict_ratio > config_.max_conflict_ratio ||
               indicators.blocked_queries > config_.max_blocked_queries;
}

bool IndicatorAdmission::AllowDispatch(const Request& request,
                                       const WorkloadManager& manager) {
  (void)manager;
  if (!congested_) return true;
  return request.priority > config_.gated_priority;
}

TechniqueInfo IndicatorAdmission::info() const {
  TechniqueInfo info;
  info.name = "Performance indicators";
  info.technique_class = TechniqueClass::kAdmissionControl;
  info.subclass = TechniqueSubclass::kThresholdBasedAdmission;
  info.description =
      "Monitors system health indicators and delays low-priority "
      "requests while any indicator exceeds its threshold.";
  info.source = "Zhang et al. [79][80]";
  return info;
}

}  // namespace wlm
