#ifndef WLM_COMMON_RESULT_H_
#define WLM_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace wlm {

/// Holds either a value of type `T` or an error `Status`. Mirrors
/// `arrow::Result` in spirit: functions that can fail return
/// `Result<T>` and callers test `ok()` before dereferencing.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Value accessors. Must only be called when `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

}  // namespace wlm

/// Evaluates `expr` (a Result<T>), propagating the error or binding the
/// value into `lhs`.
#define WLM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)      \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()
#define WLM_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define WLM_ASSIGN_OR_RETURN_NAME(a, b) WLM_ASSIGN_OR_RETURN_CONCAT(a, b)
#define WLM_ASSIGN_OR_RETURN(lhs, expr) \
  WLM_ASSIGN_OR_RETURN_IMPL(            \
      WLM_ASSIGN_OR_RETURN_NAME(_wlm_result_, __LINE__), lhs, expr)

#endif  // WLM_COMMON_RESULT_H_
