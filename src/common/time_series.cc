#include "common/time_series.h"

#include <algorithm>

namespace wlm {

void TimeSeries::Record(double time, double value) {
  points_.push_back({time, value});
  stats_.Add(value);
}

void TimeSeries::Clear() {
  points_.clear();
  stats_.Reset();
}

double TimeSeries::MeanInWindow(double t_begin, double t_end) const {
  OnlineStats window;
  for (const TimePoint& p : points_) {
    if (p.time >= t_begin && p.time < t_end) window.Add(p.value);
  }
  return window.mean();
}

double TimeSeries::SettlingTime(double lo, double hi) const {
  double settle = -1.0;
  for (const TimePoint& p : points_) {
    bool inside = p.value >= lo && p.value <= hi;
    if (inside) {
      if (settle < 0.0) settle = p.time;
    } else {
      settle = -1.0;
    }
  }
  return settle;
}

std::vector<TimePoint> TimeSeries::Downsample(size_t max_points) const {
  if (points_.size() <= max_points || max_points == 0) return points_;
  std::vector<TimePoint> out;
  out.reserve(max_points);
  double stride = static_cast<double>(points_.size()) /
                  static_cast<double>(max_points);
  for (size_t i = 0; i < max_points; ++i) {
    size_t idx = std::min(points_.size() - 1,
                          static_cast<size_t>(static_cast<double>(i) * stride));
    out.push_back(points_[idx]);
  }
  out.back() = points_.back();
  return out;
}

}  // namespace wlm
