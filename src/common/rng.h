#ifndef WLM_COMMON_RNG_H_
#define WLM_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wlm {

/// Deterministic, seedable pseudo-random number generator
/// (xoshiro256++ seeded via splitmix64) with the distribution helpers the
/// workload generators and simulators need. All stochastic behaviour in the
/// library flows through explicitly seeded `Rng` instances so every
/// experiment is reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform01();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// True with probability `p`.
  bool Bernoulli(double p);
  /// Exponential with the given mean (mean = 1/rate). Used for Poisson
  /// arrival processes.
  double Exponential(double mean);
  /// Standard normal via Box-Muller.
  double Normal(double mean, double stddev);
  /// Lognormal: exp(Normal(mu, sigma)). Heavy-tailed BI query costs and
  /// optimizer estimation error both use this.
  double LogNormal(double mu, double sigma);
  /// Poisson-distributed count with the given mean (Knuth / inversion).
  int Poisson(double mean);
  /// Zipf-distributed integer in [0, n-1] with skew `theta` in (0, 1];
  /// models hot-key access patterns for lock contention.
  int64_t Zipf(int64_t n, double theta);
  /// Bounded Pareto with shape `alpha` on [lo, hi]; heavy-tailed service
  /// demands.
  double BoundedPareto(double alpha, double lo, double hi);

  /// Picks an index in [0, weights.size()) with probability proportional
  /// to `weights[i]`. Returns 0 for an all-zero weight vector.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Derives an independent child generator; convenient for giving each
  /// workload stream its own deterministic substream.
  Rng Fork();

 private:
  uint64_t state_[4];
  // Cached Zipf normalization: recomputed when (n, theta) changes.
  int64_t zipf_n_ = -1;
  double zipf_theta_ = -1.0;
  double zipf_zeta_ = 0.0;
  double zipf_eta_ = 0.0;
  double zipf_alpha_ = 0.0;
  double zipf_zeta2_ = 0.0;
};

}  // namespace wlm

#endif  // WLM_COMMON_RNG_H_
