#ifndef WLM_COMMON_STATUS_H_
#define WLM_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace wlm {

/// Error categories used across the library. Modeled on the
/// RocksDB/Arrow convention of returning rich status objects instead of
/// throwing exceptions across API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  /// A workload-management control explicitly rejected the request
  /// (e.g., admission denied by a cost threshold).
  kRejected,
  /// The overload-protection layer shed the request (queue full, CoDel
  /// sojourn discipline, circuit breaker, or brownout). Distinct from
  /// kRejected so shed work is never accounted as an admission policy
  /// rejection or a fault abort.
  kOverloaded,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value. `Status::OK()` carries no
/// allocation; error statuses carry a code and message.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Rejected(std::string msg) {
    return Status(StatusCode::kRejected, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsRejected() const { return code_ == StatusCode::kRejected; }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace wlm

/// Propagates an error status from an expression that yields `wlm::Status`.
#define WLM_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::wlm::Status _wlm_status = (expr);          \
    if (!_wlm_status.ok()) return _wlm_status;   \
  } while (false)

#endif  // WLM_COMMON_STATUS_H_
