#ifndef WLM_COMMON_TIME_SERIES_H_
#define WLM_COMMON_TIME_SERIES_H_

#include <string>
#include <vector>

#include "common/stats.h"

namespace wlm {

/// One (time, value) observation.
struct TimePoint {
  double time = 0.0;
  double value = 0.0;
};

/// Append-only record of a named metric over simulated time. The monitor
/// publishes one of these per metric; benches print them as the paper-style
/// series.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void Record(double time, double value);
  void Clear();

  const std::string& name() const { return name_; }
  const std::vector<TimePoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }
  double last_value() const { return points_.empty() ? 0.0 : points_.back().value; }

  /// Summary over all recorded values.
  const OnlineStats& stats() const { return stats_; }

  /// Mean of values with time in [t_begin, t_end). Used to compare steady
  /// state windows (e.g., before/after a controller engages).
  double MeanInWindow(double t_begin, double t_end) const;

  /// First time at which the value enters [lo, hi] and stays inside it for
  /// all subsequent points; returns -1 if never. This is the "settling
  /// time" measure for the throttling-controller benches.
  double SettlingTime(double lo, double hi) const;

  /// Downsamples to at most `max_points` evenly spaced points (for compact
  /// bench output).
  std::vector<TimePoint> Downsample(size_t max_points) const;

 private:
  std::string name_;
  std::vector<TimePoint> points_;
  OnlineStats stats_;
};

}  // namespace wlm

#endif  // WLM_COMMON_TIME_SERIES_H_
