#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wlm {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  int64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double mean = mean_ + delta * other.count_ / static_cast<double>(n);
  m2_ += other.m2_ +
         delta * delta * count_ * other.count_ / static_cast<double>(n);
  mean_ = mean;
  count_ = n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void OnlineStats::Reset() { *this = OnlineStats(); }

double OnlineStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

Percentiles::Percentiles(size_t max_samples) : max_samples_(max_samples) {
  assert(max_samples_ > 0);
}

void Percentiles::Add(double x) {
  stats_.Add(x);
  ++total_count_;
  if (samples_.size() < max_samples_) {
    samples_.push_back(x);
  } else {
    // Vitter's Algorithm R with a deterministic LCG keyed off the count so
    // results are reproducible without threading an Rng through.
    uint64_t r = static_cast<uint64_t>(total_count_) * 6364136223846793005ULL +
                 1442695040888963407ULL;
    uint64_t slot = r % static_cast<uint64_t>(total_count_);
    if (slot < samples_.size()) samples_[slot] = x;
  }
  sorted_dirty_ = true;
}

void Percentiles::Reset() {
  total_count_ = 0;
  stats_.Reset();
  samples_.clear();
  sorted_.clear();
  sorted_dirty_ = true;
}

double Percentiles::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (sorted_dirty_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_dirty_ = false;
  }
  p = std::clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double Percentiles::FractionAtOrBelow(double threshold) const {
  if (samples_.empty()) return 0.0;
  if (sorted_dirty_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_dirty_ = false;
  }
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), threshold);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

Histogram::Histogram(double max_value, int num_buckets)
    : max_value_(max_value) {
  assert(max_value > 0.0 && num_buckets > 1);
  bounds_.resize(num_buckets);
  counts_.assign(num_buckets, 0);
  // Geometric boundaries so small values get fine resolution.
  double ratio = std::pow(max_value, 1.0 / (num_buckets - 1));
  double b = max_value / std::pow(ratio, num_buckets - 1);
  for (int i = 0; i < num_buckets; ++i) {
    bounds_[i] = b;
    b *= ratio;
  }
  bounds_.back() = max_value;
}

int Histogram::BucketFor(double x) const {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  if (it == bounds_.end()) return static_cast<int>(bounds_.size()) - 1;
  return static_cast<int>(it - bounds_.begin());
}

void Histogram::Add(double x) {
  ++counts_[BucketFor(x)];
  ++count_;
  sum_ += x;
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
}

double Histogram::mean() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  double target = p / 100.0 * static_cast<double>(count_);
  int64_t cum = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (static_cast<double>(cum) >= target) {
      double lower = i == 0 ? 0.0 : bounds_[i - 1];
      double upper = bounds_[i];
      if (counts_[i] == 0) return upper;
      double into = target - static_cast<double>(cum - counts_[i]);
      return lower + (upper - lower) * into / static_cast<double>(counts_[i]);
    }
  }
  return max_value_;
}

void Ewma::Add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

void Ewma::Reset() {
  value_ = 0.0;
  initialized_ = false;
}

}  // namespace wlm
