#ifndef WLM_COMMON_STATS_H_
#define WLM_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wlm {

/// Numerically stable running mean/variance/min/max (Welford's algorithm).
class OnlineStats {
 public:
  void Add(double x);
  void Merge(const OnlineStats& other);
  void Reset();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return count_ > 0 ? mean_ * count_ : 0.0; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Records raw samples and answers percentile queries exactly. Workload
/// SLOs in the paper are expressed as averages *and* percentiles ("x% of
/// queries complete in y time units or less"), so exact percentiles matter
/// for attainment accounting. Memory is bounded by reservoir sampling once
/// `max_samples` is exceeded (deterministic, seeded internally from the
/// sample count).
class Percentiles {
 public:
  explicit Percentiles(size_t max_samples = 1 << 20);

  void Add(double x);
  void Reset();

  int64_t count() const { return total_count_; }
  double mean() const { return stats_.mean(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }
  /// p in [0, 100]. Linear interpolation between closest ranks.
  double Percentile(double p) const;
  /// Fraction of samples <= threshold (the paper's "x% within y" check).
  double FractionAtOrBelow(double threshold) const;

 private:
  size_t max_samples_;
  int64_t total_count_ = 0;
  OnlineStats stats_;
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_dirty_ = true;
};

/// Fixed-boundary histogram with power-of-two-ish bucket boundaries, for
/// cheap percentile estimates in hot paths (monitor internals).
class Histogram {
 public:
  /// Buckets span [0, max_value] split geometrically into `num_buckets`.
  Histogram(double max_value, int num_buckets);

  void Add(double x);
  void Reset();

  int64_t count() const { return count_; }
  double mean() const;
  /// Estimated percentile via bucket interpolation.
  double Percentile(double p) const;

 private:
  int BucketFor(double x) const;

  double max_value_;
  std::vector<double> bounds_;  // upper bound per bucket
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  double sum_ = 0.0;
};

/// Exponentially weighted moving average; the feedback controllers and
/// monitor use this for smoothing noisy per-interval metrics.
class Ewma {
 public:
  /// `alpha` is the weight of the newest observation in (0, 1].
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void Add(double x);
  void Reset();

  bool empty() const { return !initialized_; }
  double value() const { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace wlm

#endif  // WLM_COMMON_STATS_H_
