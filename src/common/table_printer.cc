#include "common/table_printer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace wlm {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddRow(std::initializer_list<std::string> cells) {
  AddRow(std::vector<std::string>(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (size_t i = 0; i < headers_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << cell << std::string(widths[i] - cell.size(), ' ');
      os << (i + 1 < headers_.size() ? " | " : " |");
    }
    os << "\n";
  };
  size_t total = 1;
  for (size_t w : widths) total += w + 3;
  std::string rule(total, '-');
  os << rule << "\n";
  print_row(headers_);
  os << rule << "\n";
  for (const auto& row : rows_) print_row(row);
  os << rule << "\n";
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Int(int64_t v) { return std::to_string(v); }

std::string TablePrinter::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void PrintBanner(std::ostream& os, const std::string& title) {
  std::string rule(title.size() + 4, '=');
  os << "\n" << rule << "\n= " << title << " =\n" << rule << "\n";
}

std::string Sparkline(const std::vector<double>& values, size_t width) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  if (values.empty()) return "";
  double lo = values[0];
  double hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  double span = hi - lo;
  std::string out;
  size_t n = std::min(width, values.size());
  double stride = static_cast<double>(values.size()) / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    size_t idx = std::min(values.size() - 1,
                          static_cast<size_t>(static_cast<double>(i) * stride));
    int level = 0;
    if (span > 0.0) {
      level = static_cast<int>(std::round((values[idx] - lo) / span * 7.0));
    }
    out += kLevels[std::clamp(level, 0, 7)];
  }
  return out;
}

}  // namespace wlm
