#ifndef WLM_COMMON_TABLE_PRINTER_H_
#define WLM_COMMON_TABLE_PRINTER_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace wlm {

/// Formats aligned ASCII tables for the benchmark harnesses that regenerate
/// the paper's tables. Usage:
///
///   TablePrinter t({"Threshold", "Type", "Decision"});
///   t.AddRow({"Query Cost", "System Parameter", "rejected"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Convenience for mixed string/number rows built by the caller.
  void AddRow(std::initializer_list<std::string> cells);

  /// Renders with a header rule and column padding.
  void Print(std::ostream& os) const;

  /// Formats a double with `precision` decimals.
  static std::string Num(double v, int precision = 2);
  /// Formats a count.
  static std::string Int(int64_t v);
  /// Formats a ratio as a percentage string like "93.1%".
  static std::string Pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a boxed section banner used by every bench binary.
void PrintBanner(std::ostream& os, const std::string& title);

/// Renders a crude ASCII sparkline of `values` scaled into `width` columns.
std::string Sparkline(const std::vector<double>& values, size_t width = 60);

}  // namespace wlm

#endif  // WLM_COMMON_TABLE_PRINTER_H_
