#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace wlm {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform01() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform01();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full range
  return lo + static_cast<int64_t>(Next() % span);
}

bool Rng::Bernoulli(double p) { return Uniform01() < p; }

double Rng::Exponential(double mean) {
  double u = Uniform01();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  // Box-Muller transform; uses one fresh pair per call for simplicity.
  double u1 = Uniform01();
  double u2 = Uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

int Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    double product = Uniform01();
    int count = 0;
    while (product > limit) {
      ++count;
      product *= Uniform01();
    }
    return count;
  }
  // Normal approximation for large means.
  double v = Normal(mean, std::sqrt(mean));
  return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
}

int64_t Rng::Zipf(int64_t n, double theta) {
  assert(n > 0);
  assert(theta > 0.0 && theta < 1.0);
  if (n != zipf_n_ || theta != zipf_theta_) {
    // Gray et al. "Quickly generating billion-record synthetic databases"
    // style precomputation.
    zipf_n_ = n;
    zipf_theta_ = theta;
    zipf_zeta_ = 0.0;
    for (int64_t i = 1; i <= n; ++i) {
      zipf_zeta_ += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    zipf_zeta2_ = 0.0;
    for (int64_t i = 1; i <= std::min<int64_t>(2, n); ++i) {
      zipf_zeta2_ += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    zipf_alpha_ = 1.0 / (1.0 - theta);
    zipf_eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
                (1.0 - zipf_zeta2_ / zipf_zeta_);
  }
  double u = Uniform01();
  double uz = u * zipf_zeta_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, zipf_theta_)) return 1;
  return static_cast<int64_t>(
      static_cast<double>(zipf_n_) *
      std::pow(zipf_eta_ * u - zipf_eta_ + 1.0, zipf_alpha_));
}

double Rng::BoundedPareto(double alpha, double lo, double hi) {
  assert(alpha > 0.0 && lo > 0.0 && hi > lo);
  double u = Uniform01();
  double la = std::pow(lo, alpha);
  double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return 0;
  double target = Uniform01() * total;
  double cum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    if (target < cum) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace wlm
