#include "overload/brownout.h"

namespace wlm {

BrownoutController::BrownoutController(BrownoutOptions options)
    : options_(options) {}

int BrownoutController::Update(double now, double violation_rate,
                               bool overloaded) {
  if (level_ != 0 || last_change_ != 0.0) {
    if (now - last_change_ < options_.dwell_seconds) return level_;
  }
  if ((violation_rate >= options_.enter_rate || overloaded) &&
      level_ < options_.max_level) {
    ++level_;
    ++steps_;
    last_change_ = now;
  } else if (violation_rate <= options_.exit_rate && !overloaded &&
             level_ > 0) {
    --level_;
    ++steps_;
    last_change_ = now;
  }
  return level_;
}

}  // namespace wlm
