#include "overload/overload_controller.h"

#include <string>
#include <utility>

namespace wlm {

const char* TransitionKindToString(OverloadController::TransitionKind kind) {
  switch (kind) {
    case OverloadController::TransitionKind::kBreakerTripped:
      return "breaker_tripped";
    case OverloadController::TransitionKind::kBreakerHalfOpen:
      return "breaker_half_open";
    case OverloadController::TransitionKind::kBreakerClosed:
      return "breaker_closed";
    case OverloadController::TransitionKind::kBrownoutStepped:
      return "brownout_stepped";
  }
  return "unknown";
}

OverloadController::OverloadController(OverloadOptions options)
    : options_(std::move(options)) {
  if (options_.shedding) {
    codel_ = std::make_unique<CodelQueuePolicy>(options_.codel);
  }
  if (options_.retry_budgets) {
    retry_budgets_ = std::make_unique<RetryBudgetPool>(options_.retry_budget);
  }
  if (options_.brownout) {
    brownout_ = std::make_unique<BrownoutController>(options_.brownout_options);
  }
}

CircuitBreaker& OverloadController::BreakerFor(const std::string& workload) {
  auto it = breakers_.find(workload);
  if (it == breakers_.end()) {
    auto breaker = std::make_unique<CircuitBreaker>(options_.breaker_options);
    CircuitBreaker* raw = breaker.get();
    raw->set_transition_listener(
        [this, workload](CircuitBreaker::State state,
                         const std::string& detail) {
          if (!listener_) return;
          TransitionKind kind = TransitionKind::kBreakerTripped;
          if (state == CircuitBreaker::State::kHalfOpen) {
            kind = TransitionKind::kBreakerHalfOpen;
          } else if (state == CircuitBreaker::State::kClosed) {
            kind = TransitionKind::kBreakerClosed;
          }
          listener_(kind, workload, static_cast<int>(state), detail);
        });
    it = breakers_.emplace(workload, std::move(breaker)).first;
  }
  return *it->second;
}

CircuitBreaker* OverloadController::breaker(const std::string& workload) {
  if (!options_.breaker) return nullptr;
  return &BreakerFor(workload);
}

bool OverloadController::AnyBreakerOpen() const {
  for (const auto& [workload, breaker] : breakers_) {
    (void)workload;
    if (breaker->state() == CircuitBreaker::State::kOpen) return true;
  }
  return false;
}

std::string OverloadController::EvaluateArrival(const std::string& workload,
                                                int priority, double now,
                                                int queue_depth) {
  if (options_.shedding && queue_depth >= options_.codel.queue_capacity) {
    return "queue_full";
  }
  if (options_.brownout && brownout_ && brownout_->ShouldShed(priority)) {
    return "brownout";
  }
  if (options_.breaker && !BreakerFor(workload).AllowAdmission(now)) {
    return "breaker_open";
  }
  return std::string();
}

CodelQueuePolicy::Decision OverloadController::ObserveQueue(
    double now, double oldest_sojourn, int depth) {
  if (!codel_) return {};
  CodelQueuePolicy::Decision decision =
      codel_->Observe(now, oldest_sojourn, depth);
  lifo_ = decision.lifo;
  return decision;
}

bool OverloadController::AllowRetry(const std::string& workload, double now) {
  if (!options_.retry_budgets || !retry_budgets_) return true;
  return retry_budgets_->TryAcquire(workload, now);
}

double OverloadController::RetryTokens(const std::string& workload,
                                       double now) {
  if (!retry_budgets_) return 0.0;
  return retry_budgets_->Tokens(workload, now);
}

void OverloadController::RecordOutcome(const std::string& workload, double now,
                                       bool violated) {
  if (options_.breaker) {
    BreakerFor(workload).RecordOutcome(now, violated);
  }
  outcomes_.push_back({now, violated});
  ExpireOutcomes(now);
  while (static_cast<int>(outcomes_.size()) > options_.outcome_window_capacity) {
    outcomes_.pop_front();
  }
}

void OverloadController::ExpireOutcomes(double now) {
  while (!outcomes_.empty() &&
         outcomes_.front().time < now - options_.outcome_window_seconds) {
    outcomes_.pop_front();
  }
}

double OverloadController::GlobalViolationRate() const {
  if (outcomes_.empty()) return 0.0;
  int violated = 0;
  for (const Outcome& outcome : outcomes_) {
    if (outcome.violated) ++violated;
  }
  return static_cast<double>(violated) /
         static_cast<double>(outcomes_.size());
}

void OverloadController::OnSample(double now, int queue_depth) {
  if (!brownout_) return;
  // Expire by time here too: when brownout sheds every arrival, no
  // outcomes flow in, and a violation rate frozen above the exit
  // threshold would latch the shed level forever — the same metastable
  // loop the subsystem exists to break.
  ExpireOutcomes(now);
  bool overloaded =
      options_.shedding && queue_depth >= options_.codel.queue_capacity / 2;
  int before = brownout_->level();
  int after = brownout_->Update(now, GlobalViolationRate(), overloaded);
  if (after != before && listener_) {
    listener_(TransitionKind::kBrownoutStepped, std::string(), after,
              after > before ? "stepped up" : "stepped down");
  }
}

}  // namespace wlm
