#ifndef WLM_OVERLOAD_RETRY_BUDGET_H_
#define WLM_OVERLOAD_RETRY_BUDGET_H_

#include <cstdint>
#include <map>
#include <string>

namespace wlm {

/// Token-bucket retry budgets, one bucket per service class (workload).
/// Every automatic retry must first withdraw a token; an empty bucket
/// denies the retry, so aborted work cannot amplify into a retry storm —
/// the classic metastable-failure fuel. Buckets refill continuously on
/// the simulation clock (lazy arithmetic, no scheduled events), so the
/// pool is fully deterministic.
struct RetryBudgetOptions {
  /// Bucket capacity (max burst of retries) for workloads without an
  /// explicit entry.
  double capacity = 8.0;
  /// Steady-state sustainable retry rate, tokens per simulated second.
  double refill_per_second = 1.0;
  /// Per-workload capacity overrides.
  std::map<std::string, double> per_workload_capacity;
};

class RetryBudgetPool {
 public:
  explicit RetryBudgetPool(RetryBudgetOptions options);

  /// Withdraws one token from `workload`'s bucket. False = budget
  /// exhausted; the caller must not retry.
  [[nodiscard]] bool TryAcquire(const std::string& workload, double now);

  /// Tokens currently available to `workload` (after refill at `now`).
  double Tokens(const std::string& workload, double now);

  int64_t granted() const { return granted_; }
  int64_t denied() const { return denied_; }

 private:
  struct Bucket {
    double tokens = 0.0;
    double last_refill = 0.0;
    double capacity = 0.0;
  };

  Bucket& BucketFor(const std::string& workload, double now);
  void Refill(Bucket* bucket, double now) const;

  RetryBudgetOptions options_;
  std::map<std::string, Bucket> buckets_;
  int64_t granted_ = 0;
  int64_t denied_ = 0;
};

}  // namespace wlm

#endif  // WLM_OVERLOAD_RETRY_BUDGET_H_
