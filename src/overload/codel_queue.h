#ifndef WLM_OVERLOAD_CODEL_QUEUE_H_
#define WLM_OVERLOAD_CODEL_QUEUE_H_

#include <cstdint>

namespace wlm {

/// CoDel-style (Controlled Delay) wait-queue discipline adapted for the
/// admission queue. The policy watches the sojourn time of the oldest
/// queued request: if it has stayed above `target_seconds` for a full
/// `interval_seconds`, the queue enters a dropping episode and sheds the
/// head request, then sheds again at intervals shrinking with the square
/// root of the shed count (the CoDel control law). Once a dropping
/// episode has shed `lifo_after_sheds` requests, the policy also reports
/// that the queue should switch to LIFO order — under sustained overload
/// serving the newest request (which can still make its deadline) beats
/// draining a stale FIFO backlog that will miss every SLO.
struct CodelOptions {
  /// Hard cap on queue depth; arrivals beyond it are shed immediately.
  int queue_capacity = 256;
  /// Acceptable standing sojourn time for the oldest queued request.
  double target_seconds = 0.5;
  /// Sojourn must exceed target for this long before the first shed.
  double interval_seconds = 1.0;
  /// Sheds within one dropping episode before recommending LIFO order.
  int lifo_after_sheds = 4;
};

class CodelQueuePolicy {
 public:
  struct Decision {
    bool shed = false;  ///< shed the oldest queued request now
    bool lifo = false;  ///< serve the queue newest-first while true
  };

  explicit CodelQueuePolicy(CodelOptions options);

  /// Feeds one observation of the queue (oldest sojourn time + depth)
  /// and returns what to do. Call repeatedly after each shed until
  /// `shed` comes back false.
  Decision Observe(double now, double oldest_sojourn, int depth);

  /// True while a dropping episode is active.
  bool dropping() const { return dropping_; }
  int64_t shed_count() const { return total_sheds_; }
  const CodelOptions& options() const { return options_; }

 private:
  double NextDropDelay() const;

  CodelOptions options_;
  bool dropping_ = false;
  double first_above_time_ = 0.0;  // 0 = sojourn currently below target
  double next_drop_time_ = 0.0;
  int episode_drop_count_ = 0;
  int64_t total_sheds_ = 0;
};

}  // namespace wlm

#endif  // WLM_OVERLOAD_CODEL_QUEUE_H_
