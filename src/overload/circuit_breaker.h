#ifndef WLM_OVERLOAD_CIRCUIT_BREAKER_H_
#define WLM_OVERLOAD_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

namespace wlm {

/// Per-service-class circuit breaker driven by the SLO-violation rate of
/// recently finished requests. Hysteresis comes from three places: the
/// trip threshold is well above the close threshold, the breaker must
/// stay open for a fixed cool-down before probing, and the half-open
/// state admits only a small probe batch whose outcomes decide whether
/// the breaker closes or re-opens. All timing is simulation-clock based.
struct CircuitBreakerOptions {
  /// Sliding outcome window length (seconds of sim time).
  double window_seconds = 5.0;
  /// Bounded sample count kept in the window (Q1 capacity for the deque).
  int window_sample_capacity = 256;
  /// Minimum finished requests in the window before the breaker may trip.
  int min_samples = 8;
  /// Violation rate at or above which a closed breaker trips open.
  double trip_rate = 0.5;
  /// Cool-down an open breaker waits before admitting half-open probes.
  double open_seconds = 2.0;
  /// Probe admissions allowed in the half-open state.
  int half_open_probes = 4;
  /// Probe violation rate at or below which a half-open breaker closes.
  double close_rate = 0.25;
};

class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

  /// (new state, detail) — fired on every state transition.
  using TransitionListener =
      std::function<void(State state, const std::string& detail)>;

  explicit CircuitBreaker(CircuitBreakerOptions options);

  /// Records the SLO outcome of a finished request and may trip/close
  /// the breaker.
  void RecordOutcome(double now, bool violated);

  /// Returns true if an arrival may be admitted. Drives the
  /// Open -> HalfOpen transition off the sim clock; in half-open only
  /// the probe batch is admitted.
  [[nodiscard]] bool AllowAdmission(double now);

  State state() const { return state_; }
  double ViolationRate() const;
  int64_t trips() const { return trips_; }
  void set_transition_listener(TransitionListener listener) {
    listener_ = std::move(listener);
  }

 private:
  struct Sample {
    double time = 0.0;
    bool violated = false;
  };

  void Transition(State next, double now, const std::string& why);
  void Expire(double now);

  CircuitBreakerOptions options_;
  State state_ = State::kClosed;
  std::deque<Sample> window_;  // bounded by window_sample_capacity
  double opened_at_ = 0.0;
  int probes_issued_ = 0;
  int probes_finished_ = 0;
  int probes_violated_ = 0;
  int64_t trips_ = 0;
  TransitionListener listener_;
};

const char* CircuitStateToString(CircuitBreaker::State state);

}  // namespace wlm

#endif  // WLM_OVERLOAD_CIRCUIT_BREAKER_H_
