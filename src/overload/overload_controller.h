#ifndef WLM_OVERLOAD_OVERLOAD_CONTROLLER_H_
#define WLM_OVERLOAD_OVERLOAD_CONTROLLER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "overload/brownout.h"
#include "overload/circuit_breaker.h"
#include "overload/codel_queue.h"
#include "overload/retry_budget.h"

namespace wlm {

/// Top-level configuration for the overload-protection subsystem.
/// Everything defaults to off so existing deterministic scenarios are
/// untouched unless a config opts in.
struct OverloadOptions {
  /// Master switch; when false WorkloadManager builds no controller.
  bool enabled = false;

  /// Queue shedding: hard capacity + CoDel sojourn discipline + LIFO
  /// flip under sustained overload.
  bool shedding = true;
  CodelOptions codel;

  /// Shed queued requests whose deadline is already unreachable
  /// (now + estimated elapsed > deadline).
  bool deadline_shedding = true;
  /// When a request carries no explicit deadline, derive one from its
  /// workload's response-time SLO times this slack factor (0 disables
  /// SLO-derived deadlines).
  double deadline_slack = 2.0;

  /// Token-bucket retry budgets gating the resilience retry policy.
  bool retry_budgets = true;
  RetryBudgetOptions retry_budget;

  /// Per-service-class circuit breakers on the SLO-violation rate.
  bool breaker = true;
  CircuitBreakerOptions breaker_options;

  /// Brownout: shed lowest business priority classes first, stepwise.
  bool brownout = true;
  BrownoutOptions brownout_options;

  /// Global outcome window used to compute the brownout violation rate.
  double outcome_window_seconds = 5.0;
  int outcome_window_capacity = 512;
};

/// Facade the WorkloadManager talks to. Keyed by workload name via
/// std::map so iteration and lazy creation are deterministic; all
/// timing comes from the caller's sim-clock `now` (the controller never
/// schedules events itself).
class OverloadController {
 public:
  enum class TransitionKind {
    kBreakerTripped,
    kBreakerHalfOpen,
    kBreakerClosed,
    kBrownoutStepped,
  };

  using TransitionListener = std::function<void(
      TransitionKind kind, const std::string& workload, int level,
      const std::string& detail)>;

  explicit OverloadController(OverloadOptions options);

  /// Admission-time gate. Returns an empty string to admit, or a shed
  /// reason ("queue_full", "breaker_open", "brownout") to reject with
  /// Status::Overloaded. `priority` is the request's BusinessPriority
  /// as an int (kBackground=0 sheds first).
  [[nodiscard]] std::string EvaluateArrival(const std::string& workload,
                                            int priority, double now,
                                            int queue_depth);

  /// Feeds the CoDel discipline one look at the wait queue. Call after
  /// each shed until `shed` comes back false.
  CodelQueuePolicy::Decision ObserveQueue(double now, double oldest_sojourn,
                                          int depth);

  /// Retry-budget gate for the resilience policy.
  [[nodiscard]] bool AllowRetry(const std::string& workload, double now);
  double RetryTokens(const std::string& workload, double now);

  /// Feeds a finished request's SLO outcome to the workload's breaker
  /// and the global brownout window. Shed requests must NOT be fed
  /// here — counting our own sheds as violations would latch the
  /// breaker open (a self-inflicted metastable loop).
  void RecordOutcome(const std::string& workload, double now, bool violated);

  /// Periodic control-loop tick (monitor sample): updates the brownout
  /// level from the global violation rate and queue pressure.
  void OnSample(double now, int queue_depth);

  void set_transition_listener(TransitionListener listener) {
    listener_ = std::move(listener);
  }

  const OverloadOptions& options() const { return options_; }
  int brownout_level() const { return brownout_ ? brownout_->level() : 0; }
  bool lifo() const { return lifo_; }
  CircuitBreaker* breaker(const std::string& workload);
  /// True when any service class's breaker is currently open — the
  /// shard-health signal the cluster dispatcher routes around.
  [[nodiscard]] bool AnyBreakerOpen() const;
  RetryBudgetPool* retry_budgets() { return retry_budgets_.get(); }
  double GlobalViolationRate() const;
  int64_t shed_total() const { return shed_total_; }
  void CountShed() { ++shed_total_; }

 private:
  struct Outcome {
    double time = 0.0;
    bool violated = false;
  };

  CircuitBreaker& BreakerFor(const std::string& workload);
  /// Drops outcome-window entries older than outcome_window_seconds.
  void ExpireOutcomes(double now);

  OverloadOptions options_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
  std::unique_ptr<CodelQueuePolicy> codel_;
  std::unique_ptr<RetryBudgetPool> retry_budgets_;
  std::unique_ptr<BrownoutController> brownout_;
  std::deque<Outcome> outcomes_;  // bounded by outcome_window_capacity
  bool lifo_ = false;
  int64_t shed_total_ = 0;
  TransitionListener listener_;
};

const char* TransitionKindToString(OverloadController::TransitionKind kind);

}  // namespace wlm

#endif  // WLM_OVERLOAD_OVERLOAD_CONTROLLER_H_
