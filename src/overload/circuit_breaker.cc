#include "overload/circuit_breaker.h"

#include <string>

namespace wlm {

const char* CircuitStateToString(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kHalfOpen:
      return "half_open";
    case CircuitBreaker::State::kOpen:
      return "open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options) {}

void CircuitBreaker::Transition(State next, double now,
                                const std::string& why) {
  if (next == state_) return;
  state_ = next;
  if (next == State::kOpen) {
    opened_at_ = now;
    ++trips_;
  }
  if (next == State::kHalfOpen) {
    probes_issued_ = 0;
    probes_finished_ = 0;
    probes_violated_ = 0;
  }
  if (next == State::kClosed) {
    window_.clear();
  }
  if (listener_) listener_(next, why);
}

void CircuitBreaker::Expire(double now) {
  while (!window_.empty() &&
         window_.front().time < now - options_.window_seconds) {
    window_.pop_front();
  }
  while (static_cast<int>(window_.size()) > options_.window_sample_capacity) {
    window_.pop_front();
  }
}

double CircuitBreaker::ViolationRate() const {
  if (window_.empty()) return 0.0;
  int violated = 0;
  for (const Sample& sample : window_) {
    if (sample.violated) ++violated;
  }
  return static_cast<double>(violated) / static_cast<double>(window_.size());
}

void CircuitBreaker::RecordOutcome(double now, bool violated) {
  if (state_ == State::kHalfOpen) {
    ++probes_finished_;
    if (violated) ++probes_violated_;
    if (probes_finished_ >= options_.half_open_probes) {
      double rate = static_cast<double>(probes_violated_) /
                    static_cast<double>(probes_finished_);
      if (rate <= options_.close_rate) {
        Transition(State::kClosed, now, "probes healthy");
      } else {
        Transition(State::kOpen, now, "probes violated");
      }
    }
    return;
  }
  window_.push_back({now, violated});
  Expire(now);
  if (state_ == State::kClosed &&
      static_cast<int>(window_.size()) >= options_.min_samples &&
      ViolationRate() >= options_.trip_rate) {
    Transition(State::kOpen, now, "violation rate over trip threshold");
  }
}

bool CircuitBreaker::AllowAdmission(double now) {
  if (state_ == State::kOpen) {
    if (now - opened_at_ >= options_.open_seconds) {
      Transition(State::kHalfOpen, now, "cool-down elapsed");
    } else {
      return false;
    }
  }
  if (state_ == State::kHalfOpen) {
    if (probes_issued_ >= options_.half_open_probes) return false;
    ++probes_issued_;
    return true;
  }
  return true;
}

}  // namespace wlm
