#ifndef WLM_OVERLOAD_BROWNOUT_H_
#define WLM_OVERLOAD_BROWNOUT_H_

#include <cstdint>

namespace wlm {

/// Brownout controller: under sustained overload it raises a "shed
/// level" that rejects the lowest business-priority classes first, and
/// restores them one step at a time as the system recovers. Dwell-time
/// hysteresis (a minimum hold between level changes) plus separated
/// enter/exit thresholds keep the level from flapping.
struct BrownoutOptions {
  /// SLO-violation rate at or above which the shed level steps up.
  double enter_rate = 0.5;
  /// Violation rate at or below which the shed level steps down.
  double exit_rate = 0.15;
  /// Minimum sim-seconds between level changes.
  double dwell_seconds = 1.0;
  /// Highest shed level; level L sheds priorities < L (kBackground=0
  /// sheds first, so max_level=3 spares kHigh and kCritical).
  int max_level = 3;
};

class BrownoutController {
 public:
  explicit BrownoutController(BrownoutOptions options);

  /// Feeds the current global violation rate; `overloaded` adds queue
  /// pressure as a second trigger. Returns the (possibly new) level.
  int Update(double now, double violation_rate, bool overloaded);

  /// True if an arrival with this business priority should be shed.
  [[nodiscard]] bool ShouldShed(int priority) const {
    return priority < level_;
  }

  int level() const { return level_; }
  int64_t steps() const { return steps_; }

 private:
  BrownoutOptions options_;
  int level_ = 0;
  double last_change_ = 0.0;
  int64_t steps_ = 0;
};

}  // namespace wlm

#endif  // WLM_OVERLOAD_BROWNOUT_H_
