#include "overload/warmup.h"

#include <algorithm>
#include <cmath>

namespace wlm {

double WarmupGovernor::AdmitFraction(double now) const {
  if (!warming(now)) return 1.0;
  const double progress =
      options_.warmup_seconds <= 0.0
          ? 1.0
          : std::clamp((now - started_) / options_.warmup_seconds, 0.0, 1.0);
  const double floor = std::clamp(options_.min_fraction, 0.0, 1.0);
  return floor + (1.0 - floor) * progress;
}

bool WarmupGovernor::AdmitAllowed(double now, int outstanding) const {
  if (!warming(now)) return true;
  const int cap = std::max(
      1, static_cast<int>(std::ceil(AdmitFraction(now) *
                                    static_cast<double>(options_.capacity))));
  return outstanding < cap;
}

}  // namespace wlm
