#include "overload/retry_budget.h"

#include <algorithm>

namespace wlm {

RetryBudgetPool::RetryBudgetPool(RetryBudgetOptions options)
    : options_(std::move(options)) {}

RetryBudgetPool::Bucket& RetryBudgetPool::BucketFor(
    const std::string& workload, double now) {
  auto it = buckets_.find(workload);
  if (it == buckets_.end()) {
    Bucket bucket;
    auto cap = options_.per_workload_capacity.find(workload);
    bucket.capacity = cap != options_.per_workload_capacity.end()
                          ? cap->second
                          : options_.capacity;
    bucket.tokens = bucket.capacity;  // buckets start full
    bucket.last_refill = now;
    it = buckets_.emplace(workload, bucket).first;
  }
  return it->second;
}

void RetryBudgetPool::Refill(Bucket* bucket, double now) const {
  if (now <= bucket->last_refill) return;
  bucket->tokens =
      std::min(bucket->capacity, bucket->tokens + (now - bucket->last_refill) *
                                                      options_.refill_per_second);
  bucket->last_refill = now;
}

bool RetryBudgetPool::TryAcquire(const std::string& workload, double now) {
  Bucket& bucket = BucketFor(workload, now);
  Refill(&bucket, now);
  if (bucket.tokens < 1.0) {
    ++denied_;
    return false;
  }
  bucket.tokens -= 1.0;
  ++granted_;
  return true;
}

double RetryBudgetPool::Tokens(const std::string& workload, double now) {
  Bucket& bucket = BucketFor(workload, now);
  Refill(&bucket, now);
  return bucket.tokens;
}

}  // namespace wlm
