#ifndef WLM_OVERLOAD_WARMUP_H_
#define WLM_OVERLOAD_WARMUP_H_

namespace wlm {

/// Ramp shape for post-restart re-admission.
struct WarmupOptions {
  /// Length of the ramp after BeginWarmup, seconds.
  double warmup_seconds = 2.0;
  /// Admission fraction at the start of the ramp (linear up to 1.0).
  double min_fraction = 0.25;
  /// Outstanding-work cap at full admission; during the ramp the cap is
  /// ceil(fraction * capacity), floor 1.
  int capacity = 16;
};

/// Restart-storm defense: after a component comes back from a crash or
/// restart it is re-admitted on a linear ramp rather than all at once. A
/// freshly restarted shard reports zero outstanding work, so load-aware
/// placement would instantly funnel the whole cluster's backlog at it —
/// the multi-node analogue of the retry-driven metastable collapse the
/// single-node overload controls defend against. The governor caps how
/// much may be outstanding on the warming component as a function of
/// elapsed warm-up time; purely passive and clockless (callers pass the
/// sim time), so it stays deterministic and multi-instantiates per shard.
class WarmupGovernor {
 public:
  WarmupGovernor() = default;
  explicit WarmupGovernor(WarmupOptions options) : options_(options) {}

  /// Starts (or restarts) the ramp at `now`.
  void BeginWarmup(double now) { started_ = now; }

  /// True while the ramp is in progress at `now`.
  [[nodiscard]] bool warming(double now) const {
    return started_ >= 0.0 && now < started_ + options_.warmup_seconds;
  }

  /// Fraction of full admission allowed at `now`: min_fraction at the
  /// start of the ramp, rising linearly to 1.0 at its end (and 1.0
  /// whenever no ramp is active).
  double AdmitFraction(double now) const;

  /// The ramped admission gate: may another unit of work land when
  /// `outstanding` are already queued or running?
  [[nodiscard]] bool AdmitAllowed(double now, int outstanding) const;

  const WarmupOptions& options() const { return options_; }
  /// Sim time the current ramp ends (negative before any BeginWarmup).
  double warmup_ends() const {
    return started_ < 0.0 ? -1.0 : started_ + options_.warmup_seconds;
  }

 private:
  WarmupOptions options_;
  double started_ = -1.0;
};

}  // namespace wlm

#endif  // WLM_OVERLOAD_WARMUP_H_
