#include "overload/codel_queue.h"

#include <cmath>

namespace wlm {

CodelQueuePolicy::CodelQueuePolicy(CodelOptions options)
    : options_(options) {}

double CodelQueuePolicy::NextDropDelay() const {
  // CoDel control law: drop interval shrinks with sqrt of the episode's
  // drop count, ramping shedding pressure while overload persists.
  return options_.interval_seconds /
         std::sqrt(static_cast<double>(episode_drop_count_ + 1));
}

CodelQueuePolicy::Decision CodelQueuePolicy::Observe(double now,
                                                     double oldest_sojourn,
                                                     int depth) {
  Decision decision;
  if (depth <= 0 || oldest_sojourn < options_.target_seconds) {
    // Queue healthy: leave any dropping episode and reset the clock.
    first_above_time_ = 0.0;
    dropping_ = false;
    episode_drop_count_ = 0;
    return decision;
  }
  if (first_above_time_ == 0.0) {
    first_above_time_ = now + options_.interval_seconds;
  }
  if (!dropping_) {
    if (now >= first_above_time_) {
      dropping_ = true;
      episode_drop_count_ = 0;
      decision.shed = true;
      ++episode_drop_count_;
      ++total_sheds_;
      next_drop_time_ = now + NextDropDelay();
    }
  } else if (now >= next_drop_time_) {
    decision.shed = true;
    ++episode_drop_count_;
    ++total_sheds_;
    next_drop_time_ = now + NextDropDelay();
  }
  decision.lifo = dropping_ && episode_drop_count_ >= options_.lifo_after_sheds;
  return decision;
}

}  // namespace wlm
