#include "characterization/static_classifier.h"

#include "core/workload_manager.h"

namespace wlm {

bool ClassificationRule::Matches(const Request& request) const {
  const QuerySpec& spec = request.spec;
  if (application && spec.session.application != *application) return false;
  if (user && spec.session.user != *user) return false;
  if (client_ip && spec.session.client_ip != *client_ip) return false;
  if (stmt && spec.stmt != *stmt) return false;
  if (kind && spec.kind != *kind) return false;
  double timerons = request.plan.est_timerons;
  if (timerons < min_est_timerons || timerons > max_est_timerons) {
    return false;
  }
  double rows = static_cast<double>(request.plan.est_rows);
  if (rows < min_est_rows || rows > max_est_rows) return false;
  return true;
}

void StaticClassifier::AddRule(ClassificationRule rule) {
  rules_.push_back(std::move(rule));
}

void StaticClassifier::AddCriteriaFunction(CriteriaFunction fn) {
  criteria_.push_back(std::move(fn));
}

std::string StaticClassifier::Classify(const Request& request,
                                       const WorkloadManager& manager) {
  for (const CriteriaFunction& fn : criteria_) {
    std::optional<std::string> result = fn(request);
    if (result) return *result;
  }
  for (const ClassificationRule& rule : rules_) {
    if (rule.Matches(request)) return rule.workload;
  }
  return manager.config().default_workload;
}

TechniqueInfo StaticClassifier::info() const {
  TechniqueInfo info;
  info.name = "Static workload definition";
  info.technique_class = TechniqueClass::kWorkloadCharacterization;
  info.subclass = TechniqueSubclass::kStaticCharacterization;
  info.description =
      "Maps arriving requests to pre-defined workloads by origin "
      "attributes, statement type and predictive cost elements; "
      "user-written criteria functions take precedence.";
  info.source = "DB2 WLM [30], SQL Server Resource Governor [50], "
                "Teradata DWM [72]";
  return info;
}

}  // namespace wlm
