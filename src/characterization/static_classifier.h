#ifndef WLM_CHARACTERIZATION_STATIC_CLASSIFIER_H_
#define WLM_CHARACTERIZATION_STATIC_CLASSIFIER_H_

#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/interfaces.h"

namespace wlm {

/// One static workload-definition rule: request properties ("who" —
/// origin attributes; "what" — statement type / kind / predictive cost
/// elements) that map matching requests to a workload. Unset fields are
/// wildcards. This is the commercial facilities' identification mechanism
/// (DB2 workloads + work classes, Teradata classification criteria).
struct ClassificationRule {
  std::string workload;

  // "who": origin / connection attributes.
  std::optional<std::string> application;
  std::optional<std::string> user;
  std::optional<std::string> client_ip;

  // "what": type of work.
  std::optional<StatementType> stmt;
  std::optional<QueryKind> kind;

  // Predictive elements (DB2 work classes: "all queries with estimated
  // cost over N timerons / estimated rows over M").
  double min_est_timerons = 0.0;
  double max_est_timerons = std::numeric_limits<double>::infinity();
  double min_est_rows = 0.0;
  double max_est_rows = std::numeric_limits<double>::infinity();

  bool Matches(const Request& request) const;
};

/// Static workload characterization: ordered rules plus SQL-Server-style
/// user-written criteria functions (evaluated before the rules). First
/// match wins; otherwise the manager's default workload.
class StaticClassifier : public RequestClassifier {
 public:
  /// A criteria function returns the workload name or nullopt to pass.
  using CriteriaFunction =
      std::function<std::optional<std::string>(const Request&)>;

  StaticClassifier() = default;

  void AddRule(ClassificationRule rule);
  void AddCriteriaFunction(CriteriaFunction fn);
  size_t rule_count() const { return rules_.size(); }

  std::string Classify(const Request& request,
                       const WorkloadManager& manager) override;
  TechniqueInfo info() const override;

 private:
  std::vector<CriteriaFunction> criteria_;
  std::vector<ClassificationRule> rules_;
};

}  // namespace wlm

#endif  // WLM_CHARACTERIZATION_STATIC_CLASSIFIER_H_
