#ifndef WLM_CHARACTERIZATION_FEATURES_H_
#define WLM_CHARACTERIZATION_FEATURES_H_

#include <string>
#include <vector>

#include "engine/plan.h"
#include "engine/types.h"

namespace wlm {

/// Pre-execution feature vector of a query, built only from information
/// available *before* the query runs (the optimizer's estimates and the
/// statement shape) — the feature contract of the prediction-based
/// techniques [21][23].
std::vector<double> PreExecutionFeatures(const QuerySpec& spec,
                                         const Plan& plan);

/// Names aligned with PreExecutionFeatures (for Dataset construction).
std::vector<std::string> PreExecutionFeatureNames();

/// Aggregate behaviour of a window of requests, used by the dynamic
/// workload-type classifier [19][73] to identify what kind of workload is
/// present on the server.
struct WorkloadWindowFeatures {
  double mean_est_cpu_seconds = 0.0;
  double mean_est_io_ops = 0.0;
  double mean_est_rows = 0.0;
  double write_fraction = 0.0;
  double arrival_rate = 0.0;  // requests/sec in the window

  std::vector<double> ToVector() const;
  static std::vector<std::string> Names();
};

/// Computes window features from the specs+plans of requests that arrived
/// within a window of `window_seconds`.
WorkloadWindowFeatures ComputeWindowFeatures(
    const std::vector<const Plan*>& plans,
    const std::vector<const QuerySpec*>& specs, double window_seconds);

}  // namespace wlm

#endif  // WLM_CHARACTERIZATION_FEATURES_H_
