#include "characterization/dynamic_classifier.h"

#include <cassert>

#include "core/workload_manager.h"

namespace wlm {

const char* WorkloadTypeToString(WorkloadType t) {
  switch (t) {
    case WorkloadType::kOltp:
      return "OLTP";
    case WorkloadType::kOlap:
      return "OLAP";
  }
  return "?";
}

void WorkloadTypeClassifier::AddTrainingWindow(
    const WorkloadWindowFeatures& features, WorkloadType label) {
  training_.Add(features.ToVector(), static_cast<double>(label));
  trained_ = false;
}

Status WorkloadTypeClassifier::Train() {
  bool has_oltp = false;
  bool has_olap = false;
  for (size_t i = 0; i < training_.size(); ++i) {
    if (training_.target(i) == 0.0) has_oltp = true;
    if (training_.target(i) == 1.0) has_olap = true;
  }
  if (!has_oltp || !has_olap) {
    return Status::FailedPrecondition(
        "need training windows of both workload types");
  }
  model_.Fit(training_);
  trained_ = true;
  return Status::OK();
}

Result<WorkloadType> WorkloadTypeClassifier::Classify(
    const WorkloadWindowFeatures& features) const {
  if (!trained_) return Status::FailedPrecondition("classifier not trained");
  return static_cast<WorkloadType>(model_.PredictClass(features.ToVector()));
}

Result<double> WorkloadTypeClassifier::OlapProbability(
    const WorkloadWindowFeatures& features) const {
  if (!trained_) return Status::FailedPrecondition("classifier not trained");
  std::vector<double> proba = model_.PredictProba(features.ToVector());
  const std::vector<int>& ids = model_.class_ids();
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == static_cast<int>(WorkloadType::kOlap)) return proba[i];
  }
  return 0.0;
}

double WorkloadTypeClassifier::Accuracy(
    const std::vector<WorkloadWindowFeatures>& windows,
    const std::vector<WorkloadType>& labels) const {
  assert(windows.size() == labels.size());
  if (windows.empty() || !trained_) return 0.0;
  int correct = 0;
  for (size_t i = 0; i < windows.size(); ++i) {
    Result<WorkloadType> predicted = Classify(windows[i]);
    if (predicted.ok() && *predicted == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(windows.size());
}

LearnedRequestClassifier::LearnedRequestClassifier(DecisionTreeConfig config)
    : tree_(config) {}

void LearnedRequestClassifier::AddExample(const QuerySpec& spec,
                                          const Plan& plan,
                                          const std::string& workload) {
  auto [it, inserted] = label_ids_.try_emplace(
      workload, static_cast<int>(label_names_.size()));
  if (inserted) label_names_.push_back(workload);
  training_.Add(PreExecutionFeatures(spec, plan),
                static_cast<double>(it->second));
}

Status LearnedRequestClassifier::Train() {
  if (training_.empty()) {
    return Status::FailedPrecondition("no training examples");
  }
  tree_.Fit(training_);
  return Status::OK();
}

std::string LearnedRequestClassifier::Classify(const Request& request,
                                               const WorkloadManager& manager) {
  if (!tree_.fitted()) return manager.config().default_workload;
  int label = static_cast<int>(
      tree_.Predict(PreExecutionFeatures(request.spec, request.plan)));
  if (label < 0 || label >= static_cast<int>(label_names_.size())) {
    return manager.config().default_workload;
  }
  return label_names_[static_cast<size_t>(label)];
}

TechniqueInfo LearnedRequestClassifier::info() const {
  TechniqueInfo info;
  info.name = "ML request classifier";
  info.technique_class = TechniqueClass::kWorkloadCharacterization;
  info.subclass = TechniqueSubclass::kDynamicCharacterization;
  info.description =
      "Learns the mapping from pre-execution request features to "
      "workloads from samples and classifies unknown arrivals.";
  info.source = "Elnaffar et al. [19], Tran et al. [73]";
  return info;
}

}  // namespace wlm
