#include "characterization/features.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wlm {

std::vector<double> PreExecutionFeatures(const QuerySpec& spec,
                                         const Plan& plan) {
  // log1p compresses the heavy-tailed cost features so distance-based
  // learners (kNN) are not dominated by the largest queries.
  return {
      std::log1p(plan.est_cpu_seconds),
      std::log1p(plan.est_io_ops),
      std::log1p(plan.est_memory_mb),
      std::log1p(static_cast<double>(plan.est_rows)),
      static_cast<double>(plan.operators.size()),
      static_cast<double>(spec.kind == QueryKind::kOltpTransaction),
      static_cast<double>(spec.kind == QueryKind::kBiQuery),
      static_cast<double>(spec.kind == QueryKind::kUtility),
      static_cast<double>(spec.stmt == StatementType::kRead),
      static_cast<double>(spec.stmt == StatementType::kWrite ||
                          spec.stmt == StatementType::kDml),
      static_cast<double>(spec.dop),
  };
}

std::vector<std::string> PreExecutionFeatureNames() {
  return {"log_est_cpu",  "log_est_io",  "log_est_mem", "log_est_rows",
          "num_ops",      "is_oltp",     "is_bi",       "is_utility",
          "is_read",      "is_write",    "dop"};
}

std::vector<double> WorkloadWindowFeatures::ToVector() const {
  return {std::log1p(mean_est_cpu_seconds), std::log1p(mean_est_io_ops),
          std::log1p(mean_est_rows), write_fraction,
          std::log1p(arrival_rate)};
}

std::vector<std::string> WorkloadWindowFeatures::Names() {
  return {"log_mean_cpu", "log_mean_io", "log_mean_rows", "write_frac",
          "log_arrival_rate"};
}

WorkloadWindowFeatures ComputeWindowFeatures(
    const std::vector<const Plan*>& plans,
    const std::vector<const QuerySpec*>& specs, double window_seconds) {
  assert(plans.size() == specs.size());
  WorkloadWindowFeatures f;
  if (plans.empty()) return f;
  double n = static_cast<double>(plans.size());
  int writes = 0;
  for (size_t i = 0; i < plans.size(); ++i) {
    f.mean_est_cpu_seconds += plans[i]->est_cpu_seconds;
    f.mean_est_io_ops += plans[i]->est_io_ops;
    f.mean_est_rows += static_cast<double>(plans[i]->est_rows);
    StatementType stmt = specs[i]->stmt;
    if (stmt == StatementType::kWrite || stmt == StatementType::kDml ||
        stmt == StatementType::kLoad) {
      ++writes;
    }
  }
  f.mean_est_cpu_seconds /= n;
  f.mean_est_io_ops /= n;
  f.mean_est_rows /= n;
  f.write_fraction = writes / n;
  f.arrival_rate = window_seconds > 0.0 ? n / window_seconds : 0.0;
  return f;
}

}  // namespace wlm
