#ifndef WLM_CHARACTERIZATION_DYNAMIC_CLASSIFIER_H_
#define WLM_CHARACTERIZATION_DYNAMIC_CLASSIFIER_H_

#include <map>
#include <string>
#include <vector>

#include "characterization/features.h"
#include "common/result.h"
#include "core/interfaces.h"
#include "ml/knn.h"
#include "ml/decision_tree.h"

namespace wlm {

/// Coarse workload types the dynamic classifier recognizes.
enum class WorkloadType { kOltp = 0, kOlap = 1 };

const char* WorkloadTypeToString(WorkloadType t);

/// Dynamic workload characterization (Elnaffar et al. [19], Tran et al.
/// [73]): learns the signature of known workload types from sample
/// windows and identifies what type of workload is currently present on
/// the server. Gaussian naive Bayes over window features.
class WorkloadTypeClassifier {
 public:
  WorkloadTypeClassifier() = default;

  void AddTrainingWindow(const WorkloadWindowFeatures& features,
                         WorkloadType label);
  /// Fits the model; fails without at least one window of each type.
  Status Train();
  bool trained() const { return trained_; }

  Result<WorkloadType> Classify(const WorkloadWindowFeatures& features) const;
  /// P(OLAP) for a window — a soft "how analytical is the current mix".
  Result<double> OlapProbability(const WorkloadWindowFeatures& features) const;

  /// Convenience: fraction of `windows` classified correctly.
  double Accuracy(const std::vector<WorkloadWindowFeatures>& windows,
                  const std::vector<WorkloadType>& labels) const;

 private:
  Dataset training_{WorkloadWindowFeatures::Names()};
  NaiveBayes model_;
  bool trained_ = false;
};

/// Per-request learned router: trains a decision tree on pre-execution
/// features of historical requests labeled with the workload they belong
/// to, then classifies arrivals — dynamic characterization applied at the
/// request level (the "workload classifier" the paper describes building
/// from sample workloads).
class LearnedRequestClassifier : public RequestClassifier {
 public:
  explicit LearnedRequestClassifier(DecisionTreeConfig config = {});

  void AddExample(const QuerySpec& spec, const Plan& plan,
                  const std::string& workload);
  Status Train();
  bool trained() const { return tree_.fitted(); }
  size_t example_count() const { return training_.size(); }

  std::string Classify(const Request& request,
                       const WorkloadManager& manager) override;
  TechniqueInfo info() const override;

 private:
  Dataset training_{PreExecutionFeatureNames()};
  DecisionTree tree_;
  std::vector<std::string> label_names_;
  std::map<std::string, int> label_ids_;
};

}  // namespace wlm

#endif  // WLM_CHARACTERIZATION_DYNAMIC_CLASSIFIER_H_
