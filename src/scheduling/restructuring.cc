#include "scheduling/restructuring.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wlm {

std::vector<Plan> SlicePlan(const Plan& plan, double max_chunk_work,
                            double io_rate) {
  assert(max_chunk_work > 0.0);
  assert(io_rate > 0.0);
  std::vector<Plan> chunks;
  Plan current;
  current.query_id = plan.query_id;
  double current_work = 0.0;

  auto flush = [&] {
    if (!current.operators.empty()) {
      chunks.push_back(std::move(current));
      current = Plan{};
      current.query_id = plan.query_id;
      current_work = 0.0;
    }
  };

  for (const PlanOperator& op : plan.operators) {
    double remaining_cpu = op.cpu_seconds;
    double remaining_io = op.io_ops;
    double op_work = remaining_cpu + remaining_io / io_rate;
    const double original_op_work = op_work;
    while (op_work > 1e-12) {
      double budget = max_chunk_work - current_work;
      if (budget <= 1e-12) {
        flush();
        budget = max_chunk_work;
      }
      double take_fraction = std::min(1.0, budget / op_work);
      PlanOperator piece = op;
      piece.cpu_seconds = remaining_cpu * take_fraction;
      piece.io_ops = remaining_io * take_fraction;
      double piece_work = piece.cpu_seconds + piece.io_ops / io_rate;
      // A slice holds state in proportion to its share of the *original*
      // operator, so the pieces' state sums to the whole.
      piece.max_state_mb =
          original_op_work > 0.0
              ? op.max_state_mb * piece_work / original_op_work
              : 0.0;
      current.operators.push_back(piece);
      current_work += piece_work;
      remaining_cpu -= piece.cpu_seconds;
      remaining_io -= piece.io_ops;
      op_work -= piece_work;
    }
  }
  flush();
  if (chunks.empty()) {
    Plan empty;
    empty.query_id = plan.query_id;
    chunks.push_back(empty);
  }
  return chunks;
}

SlicedQuerySubmitter::SlicedQuerySubmitter(WorkloadManager* manager,
                                           double max_chunk_work,
                                           QueryId chunk_id_base)
    : manager_(manager),
      max_chunk_work_(max_chunk_work),
      next_id_(chunk_id_base) {}

Status SlicedQuerySubmitter::SubmitSliced(const QuerySpec& spec,
                                          DoneCallback on_done) {
  if (!listener_installed_) {
    listener_installed_ = true;
    manager_->AddCompletionListener([this](const Request& request) {
      auto it = chunk_to_chain_.find(request.spec.id);
      if (it == chunk_to_chain_.end()) return;
      size_t chain_index = it->second;
      chunk_to_chain_.erase(it);
      Chain& chain = chains_[chain_index];
      if (request.state != RequestState::kCompleted) {
        chain.result.failed = true;
        chain.result.last_finish = request.finish_time;
        if (chain.on_done) chain.on_done(chain.result);
        return;
      }
      ++chain.result.chunks_completed;
      chain.result.last_finish = request.finish_time;
      if (chain.next < chain.specs.size()) {
        SubmitNext(chain_index);
      } else if (chain.on_done) {
        chain.on_done(chain.result);
      }
    });
  }

  const Optimizer& optimizer = manager_->engine()->optimizer();
  Plan full = optimizer.BuildPlan(spec);
  double io_rate = manager_->engine()->config().io_ops_per_second;
  std::vector<Plan> pieces = SlicePlan(full, max_chunk_work_, io_rate);

  Chain chain;
  chain.result.chunks_total = static_cast<int>(pieces.size());
  chain.result.first_arrival = manager_->sim()->Now();
  chain.on_done = std::move(on_done);
  for (size_t i = 0; i < pieces.size(); ++i) {
    QuerySpec chunk = spec;
    chunk.id = next_id_++;
    chunk.cpu_seconds = pieces[i].TotalCpu();
    chunk.io_ops = pieces[i].TotalIo();
    // Memory scales with the chunk's share of the whole.
    double frac = full.TotalWork(io_rate) > 0.0
                      ? pieces[i].TotalWork(io_rate) / full.TotalWork(io_rate)
                      : 1.0;
    chunk.memory_mb = spec.memory_mb * std::min(1.0, frac * 1.5);
    chunk.locks = (i == 0) ? spec.locks : std::vector<LockRequest>{};
    chunk.result_rows = (i + 1 == pieces.size()) ? spec.result_rows : 0;
    optimizer.AttachEstimates(chunk, &pieces[i]);
    chain.specs.push_back(std::move(chunk));
    chain.plans.push_back(std::move(pieces[i]));
  }
  chains_.push_back(std::move(chain));
  SubmitNext(chains_.size() - 1);
  return Status::OK();
}

void SlicedQuerySubmitter::SubmitNext(size_t chain_index) {
  Chain& chain = chains_[chain_index];
  assert(chain.next < chain.specs.size());
  size_t i = chain.next++;
  chunk_to_chain_[chain.specs[i].id] = chain_index;
  Status status =
      manager_->SubmitWithPlan(chain.specs[i], chain.plans[i]);
  if (status.IsRejected()) {
    // Rejection fires the completion listener synchronously; nothing more
    // to do here.
    return;
  }
}

TechniqueInfo SlicedQuerySubmitter::Info() {
  TechniqueInfo info;
  info.name = "Query restructuring (plan slicing)";
  info.technique_class = TechniqueClass::kScheduling;
  info.subclass = TechniqueSubclass::kQueryRestructuring;
  info.description =
      "Decomposes a large query plan into a series of small sub-plans "
      "that are queued and scheduled individually, executing the same "
      "work with less impact on concurrent requests.";
  info.source = "Bruno et al. [6], Meng et al. [54], Kossmann [36]";
  return info;
}

}  // namespace wlm
