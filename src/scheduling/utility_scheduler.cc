#include "scheduling/utility_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/workload_manager.h"

namespace wlm {

UtilityScheduler::UtilityScheduler(Config config)
    : config_(std::move(config)) {
  double equal = classes_.empty() && config_.classes.empty()
                     ? 1.0
                     : 1.0 / std::max<size_t>(1, config_.classes.size());
  for (const ClassConfig& cc : config_.classes) {
    ClassState state;
    state.config = cc;
    state.fraction = equal;
    index_[cc.workload] = classes_.size();
    classes_.push_back(std::move(state));
  }
}

double UtilityScheduler::CostLimit(const std::string& workload) const {
  auto it = index_.find(workload);
  if (it == index_.end()) return std::numeric_limits<double>::infinity();
  return classes_[it->second].fraction * config_.system_cost_capacity;
}

double UtilityScheduler::Fraction(const std::string& workload) const {
  auto it = index_.find(workload);
  return it == index_.end() ? 0.0 : classes_[it->second].fraction;
}

double UtilityScheduler::PredictResponse(const std::string& workload,
                                         double fraction) const {
  auto it = index_.find(workload);
  if (it == index_.end()) return 0.0;
  const ClassState& state = classes_[it->second];
  double service = state.service_seconds.empty()
                       ? state.config.target_response_seconds * 0.5
                       : state.service_seconds.value();
  double lambda = state.arrival_rate.empty() ? 0.0
                                             : state.arrival_rate.value();
  // The class runs on a `fraction` slice of the machine: effective
  // stand-alone service time stretches accordingly; M/M/1-PS response
  // with utilization capped below saturation to keep the search smooth.
  double s_eff = service / std::max(fraction, 1e-3);
  double rho = std::min(0.95, lambda * s_eff);
  return s_eff / (1.0 - rho);
}

double UtilityScheduler::PlanUtility(
    const std::vector<double>& fractions) const {
  double total = 0.0;
  for (size_t i = 0; i < classes_.size(); ++i) {
    const ClassState& state = classes_[i];
    SloUtility slo(state.config.target_response_seconds,
                   SloUtility::Sense::kLowerIsBetter,
                   state.config.importance);
    total += slo.Weighted(
        PredictResponse(state.config.workload, fractions[i]));
  }
  return total;
}

void UtilityScheduler::Replan() {
  if (classes_.size() < 2) return;
  ++replans_;
  std::vector<double> fractions;
  fractions.reserve(classes_.size());
  for (const ClassState& s : classes_) fractions.push_back(s.fraction);

  double best = PlanUtility(fractions);
  // Greedy pairwise transfers until no move improves the objective.
  for (int iter = 0; iter < 200; ++iter) {
    double best_gain = 1e-9;
    int best_from = -1;
    int best_to = -1;
    for (size_t from = 0; from < classes_.size(); ++from) {
      if (fractions[from] - config_.step < config_.min_fraction) continue;
      for (size_t to = 0; to < classes_.size(); ++to) {
        if (to == from) continue;
        fractions[from] -= config_.step;
        fractions[to] += config_.step;
        double u = PlanUtility(fractions);
        fractions[from] += config_.step;
        fractions[to] -= config_.step;
        if (u - best > best_gain) {
          best_gain = u - best;
          best_from = static_cast<int>(from);
          best_to = static_cast<int>(to);
        }
      }
    }
    if (best_from < 0) break;
    fractions[best_from] -= config_.step;
    fractions[best_to] += config_.step;
    best += best_gain;
  }
  for (size_t i = 0; i < classes_.size(); ++i) {
    classes_[i].fraction = fractions[i];
  }
}

void UtilityScheduler::OnSample(const SystemIndicators& indicators,
                                WorkloadManager& manager) {
  (void)indicators;
  for (ClassState& state : classes_) {
    const TagStats& stats = manager.monitor()->tag_stats(state.config.workload);
    state.arrival_rate.Add(stats.last_interval_throughput);
  }
  // Keep service-time estimates fresh even when nothing queues: sample the
  // standalone estimates of whatever is currently running.
  for (const Request* r : manager.Running()) {
    auto it = index_.find(r->workload);
    if (it != index_.end()) {
      classes_[it->second].service_seconds.Add(r->plan.est_elapsed_seconds);
    }
  }
  if (++samples_since_replan_ >= config_.replan_every_samples) {
    samples_since_replan_ = 0;
    Replan();
  }
}

std::vector<QueryId> UtilityScheduler::Order(
    const std::vector<const Request*>& queued, const WorkloadManager& manager) {
  // Refresh service-time estimates from whatever passes through the queue.
  for (const Request* r : queued) {
    auto it = index_.find(r->workload);
    if (it != index_.end()) {
      classes_[it->second].service_seconds.Add(r->plan.est_elapsed_seconds);
    }
  }

  // Current running cost per class.
  std::map<std::string, double> running_cost;
  for (const Request* r : manager.Running()) {
    running_cost[r->workload] += r->plan.est_timerons;
  }

  // Priority order, FIFO within level; emit only requests whose class has
  // cost headroom (tentatively charging each emission).
  std::vector<const Request*> sorted = queued;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Request* a, const Request* b) {
                     return a->priority > b->priority;
                   });
  std::vector<QueryId> ids;
  for (const Request* r : sorted) {
    double limit = CostLimit(r->workload);
    double used = running_cost[r->workload];
    if (used > 0.0 && used + r->plan.est_timerons > limit) continue;
    running_cost[r->workload] += r->plan.est_timerons;
    ids.push_back(r->spec.id);
  }
  return ids;
}

TechniqueInfo UtilityScheduler::info() const {
  TechniqueInfo info;
  info.name = "Utility-function query scheduler";
  info.technique_class = TechniqueClass::kScheduling;
  info.subclass = TechniqueSubclass::kQueueManagement;
  info.description =
      "Periodically generates per-class cost limits by maximizing "
      "importance-weighted utility under an analytic performance model, "
      "then releases queued queries within those limits.";
  info.source = "Niu et al. [60] (also admission control per Table 5)";
  return info;
}

}  // namespace wlm
