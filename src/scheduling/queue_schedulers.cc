#include "scheduling/queue_schedulers.h"

#include <algorithm>
#include <cmath>

#include "core/workload_manager.h"

namespace wlm {
namespace {

std::vector<QueryId> IdsOf(const std::vector<const Request*>& queued) {
  std::vector<QueryId> ids;
  ids.reserve(queued.size());
  for (const Request* r : queued) ids.push_back(r->spec.id);
  return ids;
}

}  // namespace

std::vector<QueryId> FifoScheduler::Order(
    const std::vector<const Request*>& queued, const WorkloadManager& manager) {
  (void)manager;
  return IdsOf(queued);  // the manager's queue is already in arrival order
}

int FifoScheduler::ConcurrencyLimit(const WorkloadManager& manager) {
  (void)manager;
  return mpl_;
}

TechniqueInfo FifoScheduler::info() const {
  TechniqueInfo info;
  info.name = "FIFO wait queue";
  info.technique_class = TechniqueClass::kScheduling;
  info.subclass = TechniqueSubclass::kQueueManagement;
  info.description = "Dispatches queued requests in arrival order, "
                     "optionally capped at a fixed MPL.";
  info.source = "baseline";
  return info;
}

std::vector<QueryId> PriorityScheduler::Order(
    const std::vector<const Request*>& queued, const WorkloadManager& manager) {
  (void)manager;
  std::vector<const Request*> sorted = queued;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Request* a, const Request* b) {
                     return a->priority > b->priority;
                   });
  return IdsOf(sorted);
}

int PriorityScheduler::ConcurrencyLimit(const WorkloadManager& manager) {
  (void)manager;
  return mpl_;
}

TechniqueInfo PriorityScheduler::info() const {
  TechniqueInfo info;
  info.name = "Priority wait queues";
  info.technique_class = TechniqueClass::kScheduling;
  info.subclass = TechniqueSubclass::kQueueManagement;
  info.description =
      "Orders the wait queue by business priority, FIFO within a level.";
  info.source = "classic priority queueing [2][18]";
  return info;
}

RankScheduler::RankScheduler() : RankScheduler(0, Weights()) {}

RankScheduler::RankScheduler(int mpl, Weights weights)
    : mpl_(mpl), weights_(weights) {}

double RankScheduler::RankOf(const Request& request, double now) const {
  double wait = std::max(0.0, now - request.arrival_time);
  double est = std::max(1e-3, request.plan.est_elapsed_seconds);
  return weights_.importance * static_cast<double>(request.priority) +
         weights_.aging * (wait / est) -
         weights_.size_penalty * std::log1p(est);
}

std::vector<QueryId> RankScheduler::Order(
    const std::vector<const Request*>& queued, const WorkloadManager& manager) {
  double now = manager.sim()->Now();
  std::vector<std::pair<double, const Request*>> ranked;
  ranked.reserve(queued.size());
  for (const Request* r : queued) ranked.emplace_back(RankOf(*r, now), r);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  std::vector<QueryId> ids;
  ids.reserve(ranked.size());
  for (const auto& [rank, r] : ranked) {
    (void)rank;
    ids.push_back(r->spec.id);
  }
  return ids;
}

int RankScheduler::ConcurrencyLimit(const WorkloadManager& manager) {
  (void)manager;
  return mpl_;
}

TechniqueInfo RankScheduler::info() const {
  TechniqueInfo info;
  info.name = "Rank-function scheduler";
  info.technique_class = TechniqueClass::kScheduling;
  info.subclass = TechniqueSubclass::kQueueManagement;
  info.description =
      "Scores queued queries by importance, normalized waiting time and "
      "size, dispatching by descending rank.";
  info.source = "Gupta et al. [24]";
  return info;
}

}  // namespace wlm
