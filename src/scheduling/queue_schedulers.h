#ifndef WLM_SCHEDULING_QUEUE_SCHEDULERS_H_
#define WLM_SCHEDULING_QUEUE_SCHEDULERS_H_

#include "core/interfaces.h"

namespace wlm {

/// Baseline queue management: first-come-first-served, no concurrency
/// limit (the "no scheduling" commercial default the paper notes).
class FifoScheduler : public Scheduler {
 public:
  /// `mpl` <= 0 leaves concurrency uncapped.
  explicit FifoScheduler(int mpl = 0) : mpl_(mpl) {}

  std::vector<QueryId> Order(const std::vector<const Request*>& queued,
                             const WorkloadManager& manager) override;
  int ConcurrencyLimit(const WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  void set_mpl(int mpl) { mpl_ = mpl; }
  int mpl() const { return mpl_; }

 private:
  int mpl_;
};

/// Strict business-priority scheduling: higher priority first, FIFO within
/// a priority level.
class PriorityScheduler : public Scheduler {
 public:
  explicit PriorityScheduler(int mpl = 0) : mpl_(mpl) {}

  std::vector<QueryId> Order(const std::vector<const Request*>& queued,
                             const WorkloadManager& manager) override;
  int ConcurrencyLimit(const WorkloadManager& manager) override;
  TechniqueInfo info() const override;

 private:
  int mpl_;
};

/// Rank-function scheduling in the style of Gupta et al.'s enterprise
/// data-warehouse scheduler [24]: each queued query gets a scalar rank
/// combining business importance, time spent waiting (aging, normalized by
/// the query's estimated size so short queries age faster) and a penalty
/// for sheer size; the queue dispatches by descending rank. Balances
/// fairness, effectiveness and differentiation.
class RankScheduler : public Scheduler {
 public:
  struct Weights {
    double importance = 1.0;
    double aging = 0.5;
    double size_penalty = 0.25;
  };

  RankScheduler();
  explicit RankScheduler(int mpl, Weights weights);

  /// The rank of one request at time `now` (exposed for tests/benches).
  double RankOf(const Request& request, double now) const;

  std::vector<QueryId> Order(const std::vector<const Request*>& queued,
                             const WorkloadManager& manager) override;
  int ConcurrencyLimit(const WorkloadManager& manager) override;
  TechniqueInfo info() const override;

 private:
  int mpl_;
  Weights weights_;
};

}  // namespace wlm

#endif  // WLM_SCHEDULING_QUEUE_SCHEDULERS_H_
