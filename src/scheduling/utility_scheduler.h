#ifndef WLM_SCHEDULING_UTILITY_SCHEDULER_H_
#define WLM_SCHEDULING_UTILITY_SCHEDULER_H_

#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "control/utility.h"
#include "core/interfaces.h"

namespace wlm {

/// Niu et al.'s query scheduler [60]: multiple service classes with
/// per-class performance goals and business importance. The scheduler
/// periodically generates a *scheduling plan* — a cost limit per class
/// (the allowable total cost of that class's concurrently running
/// queries) — by hill-climbing an objective function built from
/// importance-weighted utility functions, with an analytic (M/M/1-PS)
/// model predicting each class's response time under a candidate plan.
/// Queued queries dispatch in priority order while their class has cost
/// headroom.
class UtilityScheduler : public Scheduler {
 public:
  struct ClassConfig {
    std::string workload;
    double target_response_seconds = 10.0;
    double importance = 1.0;
  };
  struct Config {
    std::vector<ClassConfig> classes;
    /// Total cost (timerons) the engine can sustain concurrently; class
    /// cost limits are fractions of this.
    double system_cost_capacity = 20000.0;
    /// Re-generate the plan every N monitor samples.
    int replan_every_samples = 5;
    /// Floor on any class's capacity fraction.
    double min_fraction = 0.05;
    /// Hill-climb transfer granularity.
    double step = 0.05;
  };

  explicit UtilityScheduler(Config config);

  std::vector<QueryId> Order(const std::vector<const Request*>& queued,
                             const WorkloadManager& manager) override;
  void OnSample(const SystemIndicators& indicators,
                WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  /// Current cost limit (timerons) for a class; infinity for unmanaged
  /// workloads.
  double CostLimit(const std::string& workload) const;
  /// Capacity fraction assigned by the last plan.
  double Fraction(const std::string& workload) const;
  /// Analytic response-time prediction for a class given a capacity
  /// fraction (exposed for tests).
  double PredictResponse(const std::string& workload, double fraction) const;
  int replans() const { return replans_; }

 private:
  struct ClassState {
    ClassConfig config;
    double fraction = 0.0;
    Ewma arrival_rate{0.3};     // completions/sec proxy
    Ewma service_seconds{0.3};  // standalone elapsed estimate
  };

  double PlanUtility(const std::vector<double>& fractions) const;
  void Replan();

  Config config_;
  std::vector<ClassState> classes_;
  std::map<std::string, size_t> index_;
  int samples_since_replan_ = 0;
  int replans_ = 0;
};

}  // namespace wlm

#endif  // WLM_SCHEDULING_UTILITY_SCHEDULER_H_
