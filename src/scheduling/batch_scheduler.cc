#include "scheduling/batch_scheduler.h"

#include <algorithm>
#include <map>

#include "core/workload_manager.h"

namespace wlm {

BatchScheduler::BatchScheduler() : BatchScheduler(Config()) {}

BatchScheduler::BatchScheduler(Config config) : config_(config) {}

double BatchScheduler::WeightOf(const Request& request) {
  // Business priority as the completion-time weight.
  return static_cast<double>(request.priority) + 1.0;
}

double BatchScheduler::TimeOf(const Request& request) {
  return std::max(1e-3, request.plan.est_elapsed_seconds);
}

std::vector<size_t> BatchScheduler::OrderBatch(
    const std::vector<const Request*>& requests) const {
  std::vector<size_t> order(requests.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  if (!config_.interaction_aware) {
    // WSPT: descending weight/time ratio.
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return WeightOf(*requests[a]) / TimeOf(*requests[a]) >
             WeightOf(*requests[b]) / TimeOf(*requests[b]);
    });
    return order;
  }

  // Group by statement template; order groups by aggregate WSPT; keep
  // WSPT order within a group.
  struct Group {
    double weight = 0.0;
    double time = 0.0;
    std::vector<size_t> members;
  };
  std::map<std::string, Group> groups;
  for (size_t i = 0; i < requests.size(); ++i) {
    Group& group = groups[requests[i]->spec.sql_digest];
    group.weight += WeightOf(*requests[i]);
    group.time += TimeOf(*requests[i]);
    group.members.push_back(i);
  }
  std::vector<Group*> ordered_groups;
  ordered_groups.reserve(groups.size());
  for (auto& [digest, group] : groups) {
    (void)digest;
    std::stable_sort(group.members.begin(), group.members.end(),
                     [&](size_t a, size_t b) {
                       return WeightOf(*requests[a]) / TimeOf(*requests[a]) >
                              WeightOf(*requests[b]) / TimeOf(*requests[b]);
                     });
    ordered_groups.push_back(&group);
  }
  std::stable_sort(ordered_groups.begin(), ordered_groups.end(),
                   [](const Group* a, const Group* b) {
                     return a->weight / a->time > b->weight / b->time;
                   });
  std::vector<size_t> order_out;
  order_out.reserve(requests.size());
  for (const Group* group : ordered_groups) {
    for (size_t member : group->members) order_out.push_back(member);
  }
  return order_out;
}

std::vector<QueryId> BatchScheduler::Order(
    const std::vector<const Request*>& queued, const WorkloadManager& manager) {
  (void)manager;
  std::vector<size_t> indices = OrderBatch(queued);
  std::vector<QueryId> ids;
  ids.reserve(indices.size());
  for (size_t index : indices) ids.push_back(queued[index]->spec.id);
  return ids;
}

int BatchScheduler::ConcurrencyLimit(const WorkloadManager& manager) {
  (void)manager;
  return config_.mpl;
}

TechniqueInfo BatchScheduler::info() const {
  TechniqueInfo info;
  info.name = "Interaction-aware batch scheduler";
  info.technique_class = TechniqueClass::kScheduling;
  info.subclass = TechniqueSubclass::kQueueManagement;
  info.description =
      "Orders a known batch to minimize importance-weighted completion "
      "time (WSPT), grouping queries with the same template back-to-back "
      "to exploit positive interactions.";
  info.source = "Ahmad et al. [2]";
  return info;
}

}  // namespace wlm
