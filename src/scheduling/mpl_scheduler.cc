#include "scheduling/mpl_scheduler.h"

#include <algorithm>

#include "core/workload_manager.h"

namespace wlm {

FeedbackMplScheduler::FeedbackMplScheduler()
    : FeedbackMplScheduler(Config()) {}

FeedbackMplScheduler::FeedbackMplScheduler(Config config)
    : config_(config), mpl_(config.initial_mpl) {}

std::vector<QueryId> FeedbackMplScheduler::Order(
    const std::vector<const Request*>& queued, const WorkloadManager& manager) {
  (void)manager;
  std::vector<const Request*> sorted = queued;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Request* a, const Request* b) {
                     return a->priority > b->priority;
                   });
  std::vector<QueryId> ids;
  ids.reserve(sorted.size());
  for (const Request* r : sorted) ids.push_back(r->spec.id);
  return ids;
}

int FeedbackMplScheduler::ConcurrencyLimit(const WorkloadManager& manager) {
  (void)manager;
  return mpl_;
}

void FeedbackMplScheduler::OnSample(const SystemIndicators& indicators,
                                    WorkloadManager& manager) {
  if (config_.target_response_seconds > 0.0) {
    // Response-time tracking mode: average the smoothed recent response
    // across workloads that have one.
    double sum = 0.0;
    int n = 0;
    for (const auto& [tag, stats] : manager.monitor()->all_tag_stats()) {
      (void)tag;
      if (!stats.recent_response.empty()) {
        sum += stats.recent_response.value();
        ++n;
      }
    }
    if (n == 0) return;
    double response = sum / n;
    double hi = config_.target_response_seconds * (1.0 + config_.band);
    double lo = config_.target_response_seconds * (1.0 - config_.band);
    if (response > hi) {
      mpl_ = std::max(config_.min_mpl, mpl_ - 1);
    } else if (response < lo) {
      mpl_ = std::min(config_.max_mpl, mpl_ + 1);
    }
    return;
  }
  // Throughput hill-climbing mode.
  smoothed_throughput_.Add(indicators.throughput);
  double throughput = smoothed_throughput_.value();
  if (last_throughput_ >= 0.0) {
    if (throughput < last_throughput_ * 0.98) direction_ = -direction_;
    mpl_ = std::clamp(mpl_ + direction_, config_.min_mpl, config_.max_mpl);
  }
  last_throughput_ = throughput;
}

TechniqueInfo FeedbackMplScheduler::info() const {
  TechniqueInfo info;
  info.name = "Feedback MPL scheduler";
  info.technique_class = TechniqueClass::kScheduling;
  info.subclass = TechniqueSubclass::kQueueManagement;
  info.description =
      "Adapts the multi-programming level with a feedback controller "
      "instead of a static threshold, dispatching by priority within it.";
  info.source = "Schroeder et al. [69][70]";
  return info;
}

}  // namespace wlm
