#ifndef WLM_SCHEDULING_MPL_SCHEDULER_H_
#define WLM_SCHEDULING_MPL_SCHEDULER_H_

#include "common/stats.h"
#include "core/interfaces.h"

namespace wlm {

/// Feedback MPL scheduler in the spirit of Schroeder et al. [69]: instead
/// of a manually set, static MPL, the concurrency level is adjusted by a
/// feedback controller to the lowest value that keeps throughput near its
/// peak while holding response times near a target. Requests dispatch in
/// priority order within the adapted MPL.
class FeedbackMplScheduler : public Scheduler {
 public:
  struct Config {
    int initial_mpl = 8;
    int min_mpl = 1;
    int max_mpl = 512;
    /// Target mean response time across workloads; <= 0 switches to pure
    /// throughput hill-climbing (Heiss-Wagner style at the scheduler).
    double target_response_seconds = 0.0;
    /// Hysteresis band around the target (fractional).
    double band = 0.15;
  };

  FeedbackMplScheduler();
  explicit FeedbackMplScheduler(Config config);

  std::vector<QueryId> Order(const std::vector<const Request*>& queued,
                             const WorkloadManager& manager) override;
  int ConcurrencyLimit(const WorkloadManager& manager) override;
  void OnSample(const SystemIndicators& indicators,
                WorkloadManager& manager) override;
  TechniqueInfo info() const override;

  int current_mpl() const { return mpl_; }

 private:
  Config config_;
  int mpl_;
  int direction_ = 1;
  double last_throughput_ = -1.0;
  Ewma smoothed_throughput_{0.5};
};

}  // namespace wlm

#endif  // WLM_SCHEDULING_MPL_SCHEDULER_H_
