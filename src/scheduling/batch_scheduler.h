#ifndef WLM_SCHEDULING_BATCH_SCHEDULER_H_
#define WLM_SCHEDULING_BATCH_SCHEDULER_H_

#include <string>
#include <vector>

#include "core/interfaces.h"

namespace wlm {

/// Batch-workload scheduler in the spirit of Ahmad et al.'s
/// interaction-aware report-generation scheduling [2]: the whole batch is
/// known up front and the scheduler picks an execution *order* optimizing
/// a batch-level objective.
///
/// Two orderings are provided:
///  - plain WSPT (weighted shortest processing time): provably optimal
///    for minimizing importance-weighted total completion time on a
///    serial resource — the "linear programming based algorithm that
///    determines an execution order for all requests in a batch" stands
///    in for [2]'s optimization;
///  - interaction-aware WSPT: queries with the same statement template
///    (sql_digest) are run back-to-back, modeling positive interactions
///    (shared scans / warm caches) that [2] exploits. Groups are ordered
///    by WSPT over their aggregate weight/time.
class BatchScheduler : public Scheduler {
 public:
  struct Config {
    bool interaction_aware = true;
    /// Optional MPL (0 = unlimited); batch queries usually run at low
    /// concurrency so completion-order matters.
    int mpl = 1;
  };

  BatchScheduler();
  explicit BatchScheduler(Config config);

  /// Pure ordering helper (exposed for tests): returns indices of
  /// `requests` in execution order.
  std::vector<size_t> OrderBatch(
      const std::vector<const Request*>& requests) const;

  std::vector<QueryId> Order(const std::vector<const Request*>& queued,
                             const WorkloadManager& manager) override;
  int ConcurrencyLimit(const WorkloadManager& manager) override;
  TechniqueInfo info() const override;

 private:
  static double WeightOf(const Request& request);
  static double TimeOf(const Request& request);

  Config config_;
};

}  // namespace wlm

#endif  // WLM_SCHEDULING_BATCH_SCHEDULER_H_
