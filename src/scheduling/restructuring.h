#ifndef WLM_SCHEDULING_RESTRUCTURING_H_
#define WLM_SCHEDULING_RESTRUCTURING_H_

#include <functional>
#include <map>
#include <vector>

#include "common/status.h"
#include "core/taxonomy.h"
#include "core/workload_manager.h"
#include "engine/plan.h"

namespace wlm {

/// Query restructuring [6][36][54]: decomposes a large query's execution
/// plan into a series of smaller sub-plans that execute in order and
/// produce the original result. Each sub-plan is scheduled as an
/// individual request, so short queries are never stuck behind the whole
/// monster and the monster never monopolizes the engine.

/// Splits `plan`'s operator sequence into chunks whose total work
/// (cpu-seconds + io/io_rate) is at most `max_chunk_work`. Operators are
/// divisible: a single operator larger than the budget is sliced
/// proportionally (state/checkpoint metadata copied). Always returns at
/// least one chunk.
std::vector<Plan> SlicePlan(const Plan& plan, double max_chunk_work,
                            double io_rate);

/// Submits a query as a chain of sub-plan requests through a
/// WorkloadManager: chunk i+1 is submitted when chunk i completes, so each
/// chunk separately traverses admission and queueing. Chunk specs carry
/// the original session attributes (classification still works); locks
/// ride on the first chunk, the result rows on the last.
class SlicedQuerySubmitter {
 public:
  struct Result {
    int chunks_total = 0;
    int chunks_completed = 0;
    double first_arrival = 0.0;
    double last_finish = -1.0;
    bool failed = false;  // a chunk was rejected or killed
    double ResponseTime() const { return last_finish - first_arrival; }
  };
  using DoneCallback = std::function<void(const Result&)>;

  /// `chunk_id_base`: sub-request ids are allocated from this counter;
  /// keep it disjoint from normal request ids.
  SlicedQuerySubmitter(WorkloadManager* manager, double max_chunk_work,
                       QueryId chunk_id_base = 1'000'000'000ULL);

  /// Decomposes and submits `spec`; `on_done` fires when the last chunk
  /// completes (or the chain fails).
  Status SubmitSliced(const QuerySpec& spec, DoneCallback on_done);

  static TechniqueInfo Info();

 private:
  struct Chain {
    std::vector<QuerySpec> specs;
    std::vector<Plan> plans;
    size_t next = 0;
    Result result;
    DoneCallback on_done;
  };

  void SubmitNext(size_t chain_index);

  WorkloadManager* manager_;
  double max_chunk_work_;
  QueryId next_id_;
  std::vector<Chain> chains_;
  // chunk id -> (chain index) for completion routing
  std::map<QueryId, size_t> chunk_to_chain_;
  bool listener_installed_ = false;
};

}  // namespace wlm

#endif  // WLM_SCHEDULING_RESTRUCTURING_H_
