#include "faults/link_model.h"

#include <algorithm>

namespace wlm {

DispatchLinkModel::DispatchLinkModel(const LinkOptions& options,
                                     int num_shards)
    : options_(options) {
  links_.resize(static_cast<size_t>(std::max(0, num_shards)));
  for (size_t shard = 0; shard < links_.size(); ++shard) {
    // Independent streams: splitting one seed across shards with a large
    // odd stride keeps the per-shard sequences uncorrelated while the
    // whole model stays a pure function of (options.seed, shard).
    links_[shard].rng =
        Rng(options_.seed + 0x9E3779B97F4A7C15ULL * (shard + 1));
  }
}

void DispatchLinkModel::SetShardQuality(int shard, double delay_factor,
                                        double drop_factor) {
  if (shard < 0 || static_cast<size_t>(shard) >= links_.size()) return;
  links_[static_cast<size_t>(shard)].delay_factor =
      std::max(0.0, delay_factor);
  links_[static_cast<size_t>(shard)].drop_factor = std::max(0.0, drop_factor);
}

double DispatchLinkModel::Delay(int shard) const {
  if (shard < 0 || static_cast<size_t>(shard) >= links_.size()) return 0.0;
  return options_.delay_seconds *
         links_[static_cast<size_t>(shard)].delay_factor;
}

double DispatchLinkModel::DropRate(int shard) const {
  if (shard < 0 || static_cast<size_t>(shard) >= links_.size()) return 0.0;
  return std::clamp(
      options_.drop_rate * links_[static_cast<size_t>(shard)].drop_factor,
      0.0, 1.0);
}

bool DispatchLinkModel::DropHeartbeat(int shard) {
  const double rate = DropRate(shard);
  if (rate <= 0.0) return false;  // lossless links never consume the stream
  return links_[static_cast<size_t>(shard)].rng.Bernoulli(rate);
}

}  // namespace wlm
