#include "faults/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace wlm {

FaultInjector::FaultInjector(Simulation* sim, DatabaseEngine* engine,
                             FaultSink* wlm)
    : sim_(sim), engine_(engine), wlm_(wlm), rng_(1) {}

Status FaultInjector::Arm(const FaultPlan& plan) {
  for (const FaultEvent& event : plan.events) {
    if (event.duration <= 0.0) {
      return Status::InvalidArgument("fault window duration must be > 0");
    }
    if (event.start < 0.0) {
      return Status::InvalidArgument("fault window start must be >= 0");
    }
    if (event.kind == FaultKind::kQueryAborts && event.period <= 0.0) {
      return Status::InvalidArgument("abort period must be > 0");
    }
    if (IsShardFaultKind(event.kind)) {
      return Status::InvalidArgument(
          "shard-level fault kinds arm via ClusterDispatcher::ArmFaultPlan");
    }
  }
  rng_ = Rng(plan.seed);
  // Plan order is the deterministic tie-break: the simulation executes
  // same-time events in scheduling order.
  for (const FaultEvent& event : plan.events) {
    int index = next_index_++;
    sim_->ScheduleAt(event.start,
                     [this, index, event] { Begin(index, event); });
    sim_->ScheduleAt(event.end(), [this, index, event] { End(index, event); });
  }
  return Status::OK();
}

void FaultInjector::NotifyBegin(const FaultEvent& event,
                                const std::string& detail) {
  if (wlm_ != nullptr) {
    wlm_->NotifyFaultBegin(FaultKindToString(event.kind), detail);
  }
}

void FaultInjector::NotifyEnd(const FaultEvent& event, double started_at) {
  if (wlm_ != nullptr) {
    wlm_->NotifyFaultEnd(FaultKindToString(event.kind), started_at);
  }
}

void FaultInjector::ApplyEngineState() {
  double io_factor = 1.0;
  int cores_offline = 0;
  double pressure_mb = 0.0;
  for (const auto& [index, event] : active_) {
    switch (event.kind) {
      case FaultKind::kDiskDegrade:
        io_factor = std::min(io_factor,
                             std::clamp(event.magnitude, 0.0, 1.0));
        break;
      case FaultKind::kIoStall:
        io_factor = 0.0;
        break;
      case FaultKind::kCpuLoss:
        cores_offline += std::max(
            1, static_cast<int>(std::llround(event.magnitude)));
        break;
      case FaultKind::kMemoryPressure:
        pressure_mb += std::max(0.0, event.magnitude);
        break;
      default:
        break;
    }
  }
  engine_->SetIoRateFactor(io_factor);
  engine_->SetCpusOffline(cores_offline);
  engine_->memory().SetPressureMb(pressure_mb);
}

void FaultInjector::Begin(int index, const FaultEvent& event) {
  active_[index] = event;
  started_at_[index] = sim_->Now();
  ++stats_.windows_opened;

  char detail[64];
  detail[0] = '\0';
  switch (event.kind) {
    case FaultKind::kDiskDegrade:
      std::snprintf(detail, sizeof(detail), "io_factor=%.2f",
                    std::clamp(event.magnitude, 0.0, 1.0));
      break;
    case FaultKind::kIoStall:
      std::snprintf(detail, sizeof(detail), "io_factor=0");
      break;
    case FaultKind::kMemoryPressure:
      std::snprintf(detail, sizeof(detail), "pressure=%.0fMB",
                    event.magnitude);
      break;
    case FaultKind::kCpuLoss:
      std::snprintf(detail, sizeof(detail), "cores_offline=%d",
                    std::max(1, static_cast<int>(std::llround(
                                    event.magnitude))));
      break;
    case FaultKind::kLockStorm:
      std::snprintf(detail, sizeof(detail), "hot_keys=%d", event.hot_keys);
      break;
    case FaultKind::kQueryAborts:
      std::snprintf(detail, sizeof(detail), "period=%.2fs victims=%d",
                    event.period,
                    std::max(1, static_cast<int>(event.magnitude)));
      break;
    case FaultKind::kArrivalSurge:
      std::snprintf(detail, sizeof(detail), "surge=%.1fx", event.magnitude);
      break;
    case FaultKind::kShardCrash:
    case FaultKind::kShardRestart:
      break;  // unreachable: Arm rejects shard-level kinds
  }
  NotifyBegin(event, detail);

  switch (event.kind) {
    case FaultKind::kDiskDegrade:
    case FaultKind::kIoStall:
    case FaultKind::kMemoryPressure:
    case FaultKind::kCpuLoss:
      ApplyEngineState();
      break;
    case FaultKind::kLockStorm: {
      // One storm transaction seizes the hottest keys (the Zipf
      // generators start at key 0) exclusively for the whole window;
      // conflicting writers queue behind it until End kills it.
      QuerySpec spec;
      spec.id = next_storm_id_++;
      spec.kind = QueryKind::kOltpTransaction;
      spec.stmt = StatementType::kWrite;
      // Demand well past the window so it cannot finish early and
      // release the keys before the scripted recovery.
      spec.cpu_seconds = 2.0 * event.duration;
      spec.io_ops = 0.0;
      spec.memory_mb = 8.0;
      spec.dop = 1;
      for (int key = 0; key < event.hot_keys; ++key) {
        spec.locks.push_back({static_cast<LockKey>(key), true});
      }
      ExecutionContext ctx;
      ctx.tag = "fault-storm";
      QueryId id = spec.id;
      ctx.on_finish = [this, id, index](const QueryOutcome&) {
        live_storm_ids_.erase(id);
        auto it = storm_ids_.find(index);
        if (it != storm_ids_.end()) {
          auto& ids = it->second;
          ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
        }
      };
      if (engine_->Dispatch(spec, std::move(ctx)).ok()) {
        storm_ids_[index].push_back(id);
        live_storm_ids_.insert(id);
        ++stats_.storm_txns;
      }
      break;
    }
    case FaultKind::kQueryAborts:
      AbortStrike(index, event);
      break;
    case FaultKind::kArrivalSurge:
      if (surge_handler_) surge_handler_(event.magnitude, true);
      break;
    case FaultKind::kShardCrash:
    case FaultKind::kShardRestart:
      break;  // unreachable: Arm rejects shard-level kinds
  }
}

void FaultInjector::End(int index, const FaultEvent& event) {
  auto it = active_.find(index);
  if (it == active_.end()) return;
  active_.erase(it);
  double started_at = started_at_[index];
  started_at_.erase(index);
  ++stats_.windows_closed;

  switch (event.kind) {
    case FaultKind::kDiskDegrade:
    case FaultKind::kIoStall:
    case FaultKind::kMemoryPressure:
    case FaultKind::kCpuLoss:
      // Recover to the level of the windows still open, not to healthy.
      ApplyEngineState();
      break;
    case FaultKind::kLockStorm: {
      std::vector<QueryId> leftover = storm_ids_[index];
      storm_ids_.erase(index);
      for (QueryId id : leftover) {
        live_storm_ids_.erase(id);
        (void)engine_->Kill(id);
      }
      break;
    }
    case FaultKind::kQueryAborts:
      break;  // the strike chain observes the closed window and stops
    case FaultKind::kArrivalSurge:
      if (surge_handler_) surge_handler_(event.magnitude, false);
      break;
    case FaultKind::kShardCrash:
    case FaultKind::kShardRestart:
      break;  // unreachable: Arm rejects shard-level kinds
  }
  NotifyEnd(event, started_at);
}

void FaultInjector::AbortStrike(int index, const FaultEvent& event) {
  if (active_.count(index) == 0) return;  // window closed under the chain

  // Victims are real workload queries only — never storm transactions —
  // drawn by the seeded RNG from the id-sorted snapshot so the pick is
  // independent of hash-map iteration order.
  std::vector<QueryId> candidates;
  for (const ExecutionProgress& p : engine_->Snapshot()) {
    if (p.id >= kFaultStormIdBase) continue;
    candidates.push_back(p.id);
  }
  std::sort(candidates.begin(), candidates.end());
  int strikes = std::max(1, static_cast<int>(event.magnitude));
  for (int i = 0; i < strikes && !candidates.empty(); ++i) {
    size_t pick = static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1));
    QueryId victim = candidates[pick];
    candidates.erase(candidates.begin() + static_cast<ptrdiff_t>(pick));
    Status status =
        wlm_ != nullptr
            ? wlm_->AbortRequestByFault(victim,
                                        FaultKindToString(event.kind))
            : engine_->Kill(victim);
    if (status.ok()) ++stats_.aborts_fired;
  }

  double next = sim_->Now() + event.period;
  double window_end = started_at_[index] + event.duration;
  if (next < window_end - 1e-12) {
    sim_->ScheduleAt(next, [this, index, event] { AbortStrike(index, event); });
  }
}

}  // namespace wlm
