#ifndef WLM_FAULTS_FAULT_PLAN_H_
#define WLM_FAULTS_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace wlm {

/// The disturbance classes the injector can script against a run. Each
/// targets one surface the workload-management controls defend:
enum class FaultKind {
  /// Disk slows to `magnitude` (a rate factor in (0, 1)) of rated IOPS.
  kDiskDegrade,
  /// Disk stalls completely: rate factor 0 for the window.
  kIoStall,
  /// `magnitude` MB of memory vanish from the governor's budget;
  /// already-granted reservations are honored, new grants shrink.
  kMemoryPressure,
  /// `magnitude` CPU cores go offline (rounded, min 1).
  kCpuLoss,
  /// A storm transaction grabs exclusive locks on the `hot_keys`
  /// hottest keys (the Zipf generators' keys 0..hot_keys-1) and holds
  /// them for the whole window — queueing every conflicting writer.
  kLockStorm,
  /// Every `period` seconds, `magnitude` (min 1) running queries are
  /// spontaneously aborted, victims drawn from the injector's seeded RNG.
  kQueryAborts,
  /// Arrival-rate surge: the registered surge handler is told to scale
  /// arrivals by `magnitude` for the window (the injector itself does
  /// not generate load).
  kArrivalSurge,
  /// Cluster-level: shard `shard`'s process dies at `start` and comes
  /// back at `end()`. Unannounced — the dispatcher only learns of the
  /// death through its failure detector, and queries routed there in
  /// the meantime are black-holed. Armed via
  /// ClusterDispatcher::ArmFaultPlan, not FaultInjector.
  kShardCrash,
  /// Cluster-level: a *coordinated* restart of shard `shard` — the
  /// dispatcher is told at `start` (no detection latency), drains the
  /// shard immediately and re-admits it through the warm-up ramp at
  /// `end()`. Armed via ClusterDispatcher::ArmFaultPlan.
  kShardRestart,
};

const char* FaultKindToString(FaultKind kind);
inline constexpr int kFaultKindCount = 9;
/// Kinds FaultInjector can arm against a single engine (the prefix of
/// FaultKind before the cluster-level shard kinds).
inline constexpr int kEngineFaultKindCount = 7;

/// True for the cluster-level kinds only ClusterDispatcher::ArmFaultPlan
/// understands (FaultInjector::Arm rejects them).
bool IsShardFaultKind(FaultKind kind);

/// One scripted fault window on the simulation clock.
struct FaultEvent {
  FaultKind kind = FaultKind::kDiskDegrade;
  /// Window start, sim seconds.
  double start = 0.0;
  /// Window length, sim seconds (must be > 0).
  double duration = 1.0;
  /// Kind-specific intensity; see FaultKind.
  double magnitude = 0.0;
  /// kQueryAborts: seconds between strikes.
  double period = 0.5;
  /// kLockStorm: number of hottest keys seized.
  int hot_keys = 4;
  /// kShardCrash / kShardRestart: the shard index the window targets.
  int shard = 0;

  double end() const { return start + duration; }
};

/// A seeded, scriptable fault timeline. The plan plus the seed fully
/// determine every injected disturbance — including RNG-driven victim
/// selection — so a run under a given (workload seed, FaultPlan) pair is
/// reproducible bit-for-bit.
struct FaultPlan {
  /// Seeds the injector's victim-selection RNG.
  uint64_t seed = 1;
  std::vector<FaultEvent> events;

  /// Fluent append; returns *this for chaining.
  FaultPlan& Add(FaultEvent event);
  /// Latest window end, 0 for an empty plan.
  double Horizon() const;
  /// Human-readable timeline, one event per line.
  std::string ToString() const;

  /// Deterministically generates `num_events` windows with kinds,
  /// placements and intensities drawn from `seed`, all ending within
  /// `horizon`. Property tests fuzz resilience invariants with this.
  static FaultPlan Random(uint64_t seed, double horizon, int num_events);

  /// The metastable-failure recipe: an arrival surge of `surge_factor`
  /// over [start, start+duration) overlapped by periodic query aborts of
  /// `abort_magnitude` victims every `abort_period` seconds. Without
  /// retry budgets and shedding, the abort-driven retries plus the surge
  /// backlog keep goodput collapsed after both windows close.
  static FaultPlan MetastableStorm(uint64_t seed, double start,
                                   double duration, double surge_factor,
                                   double abort_magnitude,
                                   double abort_period);

  /// A rolling restart: each of `num_shards` shards crashes for
  /// `down_seconds`, staggered `gap_seconds` apart starting at `start`
  /// (shard 0 first). `announced` selects kShardRestart windows
  /// (coordinated drain) over kShardCrash windows (the dispatcher must
  /// detect each death itself). The chaos suite's crash scenario.
  static FaultPlan RollingRestart(uint64_t seed, int num_shards, double start,
                                  double down_seconds, double gap_seconds,
                                  bool announced = false);
};

}  // namespace wlm

#endif  // WLM_FAULTS_FAULT_PLAN_H_
