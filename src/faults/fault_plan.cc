#include "faults/fault_plan.h"

#include <algorithm>
#include <cstdio>

#include "common/rng.h"

namespace wlm {

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDiskDegrade:
      return "disk_degrade";
    case FaultKind::kIoStall:
      return "io_stall";
    case FaultKind::kMemoryPressure:
      return "memory_pressure";
    case FaultKind::kCpuLoss:
      return "cpu_loss";
    case FaultKind::kLockStorm:
      return "lock_storm";
    case FaultKind::kQueryAborts:
      return "query_aborts";
    case FaultKind::kArrivalSurge:
      return "arrival_surge";
    case FaultKind::kShardCrash:
      return "shard_crash";
    case FaultKind::kShardRestart:
      return "shard_restart";
  }
  return "?";
}

bool IsShardFaultKind(FaultKind kind) {
  return kind == FaultKind::kShardCrash || kind == FaultKind::kShardRestart;
}

FaultPlan& FaultPlan::Add(FaultEvent event) {
  events.push_back(event);
  return *this;
}

double FaultPlan::Horizon() const {
  double horizon = 0.0;
  for (const FaultEvent& event : events) {
    horizon = std::max(horizon, event.end());
  }
  return horizon;
}

std::string FaultPlan::ToString() const {
  std::string out = "FaultPlan seed=" + std::to_string(seed) + "\n";
  for (const FaultEvent& event : events) {
    char line[160];
    if (IsShardFaultKind(event.kind)) {
      std::snprintf(line, sizeof(line),
                    "  [%8.3fs .. %8.3fs] %-15s shard=%d\n", event.start,
                    event.end(), FaultKindToString(event.kind), event.shard);
    } else {
      std::snprintf(line, sizeof(line),
                    "  [%8.3fs .. %8.3fs] %-15s magnitude=%.3f period=%.3f "
                    "hot_keys=%d\n",
                    event.start, event.end(), FaultKindToString(event.kind),
                    event.magnitude, event.period, event.hot_keys);
    }
    out += line;
  }
  return out;
}

FaultPlan FaultPlan::Random(uint64_t seed, double horizon, int num_events) {
  FaultPlan plan;
  plan.seed = seed;
  if (horizon <= 0.0 || num_events <= 0) return plan;
  Rng rng(seed);
  for (int i = 0; i < num_events; ++i) {
    FaultEvent event;
    // Engine kinds only: the shard-level kinds need a cluster to mean
    // anything and are armed through ClusterDispatcher::ArmFaultPlan.
    event.kind = static_cast<FaultKind>(
        rng.UniformInt(0, kEngineFaultKindCount - 1));
    event.duration = rng.Uniform(0.05 * horizon, 0.25 * horizon);
    event.start = rng.Uniform(0.0, horizon - event.duration);
    switch (event.kind) {
      case FaultKind::kDiskDegrade:
        event.magnitude = rng.Uniform(0.1, 0.6);
        break;
      case FaultKind::kIoStall:
        event.magnitude = 0.0;
        break;
      case FaultKind::kMemoryPressure:
        event.magnitude = rng.Uniform(64.0, 512.0);
        break;
      case FaultKind::kCpuLoss:
        event.magnitude = static_cast<double>(rng.UniformInt(1, 2));
        break;
      case FaultKind::kLockStorm:
        event.hot_keys = static_cast<int>(rng.UniformInt(2, 8));
        break;
      case FaultKind::kQueryAborts:
        event.magnitude = static_cast<double>(rng.UniformInt(1, 2));
        event.period = rng.Uniform(0.1, 0.5);
        break;
      case FaultKind::kArrivalSurge:
        event.magnitude = rng.Uniform(1.5, 4.0);
        break;
      case FaultKind::kShardCrash:
      case FaultKind::kShardRestart:
        break;  // unreachable: the draw spans engine kinds only
    }
    plan.Add(event);
  }
  return plan;
}

FaultPlan FaultPlan::MetastableStorm(uint64_t seed, double start,
                                     double duration, double surge_factor,
                                     double abort_magnitude,
                                     double abort_period) {
  FaultPlan plan;
  plan.seed = seed;
  FaultEvent surge;
  surge.kind = FaultKind::kArrivalSurge;
  surge.start = start;
  surge.duration = duration;
  surge.magnitude = surge_factor;
  plan.Add(surge);
  FaultEvent aborts;
  aborts.kind = FaultKind::kQueryAborts;
  aborts.start = start;
  aborts.duration = duration;
  aborts.magnitude = abort_magnitude;
  aborts.period = abort_period;
  plan.Add(aborts);
  return plan;
}

FaultPlan FaultPlan::RollingRestart(uint64_t seed, int num_shards,
                                    double start, double down_seconds,
                                    double gap_seconds, bool announced) {
  FaultPlan plan;
  plan.seed = seed;
  for (int shard = 0; shard < num_shards; ++shard) {
    FaultEvent event;
    event.kind =
        announced ? FaultKind::kShardRestart : FaultKind::kShardCrash;
    event.shard = shard;
    event.start = start + static_cast<double>(shard) * gap_seconds;
    event.duration = down_seconds;
    plan.Add(event);
  }
  return plan;
}

}  // namespace wlm
