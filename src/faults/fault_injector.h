#ifndef WLM_FAULTS_FAULT_INJECTOR_H_
#define WLM_FAULTS_FAULT_INJECTOR_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "engine/engine.h"
#include "faults/fault_plan.h"
#include "faults/fault_sink.h"
#include "sim/simulation.h"

namespace wlm {

/// Storm transactions occupy a reserved id range so tests, victim
/// selection and trace readers can tell them from real workload queries.
inline constexpr QueryId kFaultStormIdBase = 0xF000000000000000ULL;

struct FaultInjectorStats {
  int windows_opened = 0;
  int windows_closed = 0;
  /// Spontaneous query aborts actually fired (victims existed).
  int aborts_fired = 0;
  /// Storm transactions dispatched.
  int storm_txns = 0;
};

/// Deterministic fault injector: arms a FaultPlan's windows as events on
/// the discrete-event clock and perturbs the engine (I/O rate, offline
/// cores, memory pressure, hot-key lock storms, spontaneous aborts) for
/// exactly the scripted intervals. All randomness flows from the plan's
/// seed, so a run is bit-reproducible given (workload seed, plan).
///
/// With a FaultSink attached (in practice the WorkloadManager), window
/// boundaries are reported via NotifyFaultBegin/End (feeding the event
/// log, metrics and the fault trace track, and engaging resilience
/// policies) and spontaneous aborts go through AbortRequestByFault so the
/// retry policy sees them. Without one, the injector drives the engine
/// alone.
///
/// Overlapping windows compose: the effective I/O factor is the minimum
/// of active windows, offline cores and pressure MB are sums, and each
/// recovers to the remaining windows' level — not blindly to healthy.
class FaultInjector {
 public:
  FaultInjector(Simulation* sim, DatabaseEngine* engine,
                FaultSink* wlm = nullptr);

  /// Called at kArrivalSurge boundaries: (factor, true) when the surge
  /// window opens, (factor, false) when it closes. The load generator
  /// owns scaling its arrival process.
  void set_surge_handler(std::function<void(double factor, bool active)> fn) {
    surge_handler_ = std::move(fn);
  }

  /// Schedules every window of `plan` on the clock. May be called again
  /// to layer additional plans; the victim RNG is re-seeded from each
  /// plan's seed at its Arm call.
  Status Arm(const FaultPlan& plan);

  const FaultInjectorStats& stats() const { return stats_; }
  /// Windows currently open.
  int active_windows() const { return static_cast<int>(active_.size()); }

 private:
  void Begin(int index, const FaultEvent& event);
  void End(int index, const FaultEvent& event);
  /// One kQueryAborts strike; reschedules itself every `period` while
  /// window `index` stays open.
  void AbortStrike(int index, const FaultEvent& event);
  /// Re-derives engine I/O factor / offline cores / memory pressure from
  /// the currently open windows.
  void ApplyEngineState();
  void NotifyBegin(const FaultEvent& event, const std::string& detail);
  void NotifyEnd(const FaultEvent& event, double started_at);

  Simulation* sim_;
  DatabaseEngine* engine_;
  FaultSink* wlm_;
  std::function<void(double, bool)> surge_handler_;
  Rng rng_;

  int next_index_ = 0;
  /// Open windows: armed-event index -> the event (begin time implied).
  std::unordered_map<int, FaultEvent> active_;
  std::unordered_map<int, double> started_at_;
  /// Live storm transactions per lock-storm window.
  std::unordered_map<int, std::vector<QueryId>> storm_ids_;
  std::unordered_set<QueryId> live_storm_ids_;
  QueryId next_storm_id_ = kFaultStormIdBase;
  FaultInjectorStats stats_;
};

}  // namespace wlm

#endif  // WLM_FAULTS_FAULT_INJECTOR_H_
