#ifndef WLM_FAULTS_FAULT_SINK_H_
#define WLM_FAULTS_FAULT_SINK_H_

#include <string>

#include "common/status.h"
#include "engine/types.h"

namespace wlm {

/// What the fault injector needs from the workload manager, owned by the
/// faults layer so the dependency points downward: WorkloadManager (core)
/// implements this interface, FaultInjector talks only to it. The faults
/// layer must never include core headers — core already includes faults
/// to arm plans, and the reverse edge would be an include cycle in the
/// layer DAG (rule T2).
class FaultSink {
 public:
  virtual ~FaultSink() = default;

  /// A fault window opened. `kind` is FaultKindToString of the window;
  /// `detail` is a human-readable summary for the event log.
  virtual void NotifyFaultBegin(const std::string& kind,
                                const std::string& detail) = 0;

  /// The matching window closed; `started_at` is its open time.
  virtual void NotifyFaultEnd(const std::string& kind, double started_at) = 0;

  /// A spontaneous-abort strike chose `id`. The sink routes it through
  /// retry/resilience policy rather than a raw engine kill.
  [[nodiscard]] virtual Status AbortRequestByFault(
      QueryId id, const std::string& reason) = 0;
};

}  // namespace wlm

#endif  // WLM_FAULTS_FAULT_SINK_H_
