#ifndef WLM_FAULTS_LINK_MODEL_H_
#define WLM_FAULTS_LINK_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace wlm {

/// Baseline quality of the dispatcher <-> shard links. Per-shard factors
/// scale these (SetShardQuality), so a fault script can degrade one
/// shard's link without touching the others.
struct LinkOptions {
  /// One-way message delay, seconds (heartbeats and deferred dispatches).
  double delay_seconds = 0.0;
  /// Probability an individual heartbeat is dropped in transit.
  double drop_rate = 0.0;
  /// Seeds the per-shard drop streams; part of the determinism contract.
  uint64_t seed = 0x11CEu;
};

/// Deterministic model of the dispatch fabric between the dispatcher and
/// its shards. Each shard gets an independent seeded RNG stream, so
/// degrading (or even querying) one shard's link never perturbs the drop
/// sequence another shard observes — adding a fault window to shard 2
/// leaves shards 0/1/3 bit-identical.
///
/// Drops are only drawn while the shard's effective drop rate is
/// positive: with a zero rate the stream is never consulted, so runs with
/// lossless links stay byte-identical to runs predating the link model.
class DispatchLinkModel {
 public:
  DispatchLinkModel(const LinkOptions& options, int num_shards);

  /// Scales shard `shard`'s delay and drop rate (factors >= 0, both 1.0
  /// at construction). A fault script degrades a link by raising them.
  void SetShardQuality(int shard, double delay_factor, double drop_factor);

  /// Effective one-way delay to `shard`, seconds.
  double Delay(int shard) const;
  /// Effective heartbeat drop probability for `shard`.
  double DropRate(int shard) const;
  /// Draws from shard `shard`'s stream: true when this heartbeat is lost.
  [[nodiscard]] bool DropHeartbeat(int shard);

 private:
  LinkOptions options_;
  struct ShardLink {
    double delay_factor = 1.0;
    double drop_factor = 1.0;
    Rng rng;
    ShardLink() : rng(1) {}
  };
  std::vector<ShardLink> links_;
};

}  // namespace wlm

#endif  // WLM_FAULTS_LINK_MODEL_H_
