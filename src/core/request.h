#ifndef WLM_CORE_REQUEST_H_
#define WLM_CORE_REQUEST_H_

#include <limits>
#include <string>

#include "engine/execution.h"
#include "engine/plan.h"
#include "engine/types.h"

namespace wlm {

/// Business priority (importance level) assigned to a workload from the
/// SLA, as in the paper's Section 2.1. Higher enum value = more important.
enum class BusinessPriority {
  kBackground = 0,
  kLow = 1,
  kMedium = 2,
  kHigh = 3,
  kCritical = 4,
};

const char* BusinessPriorityToString(BusinessPriority p);

/// Default engine resource weights for a priority level (the "resource
/// access priority" a service class confers).
ResourceShares SharesForPriority(BusinessPriority p);

/// Lifecycle of a request through the workload-management process:
/// arrival -> (admission) -> queued -> (scheduling) -> running ->
/// (execution control) -> terminal state.
enum class RequestState {
  kArrived,
  kQueued,
  kRejected,   // admission denied
  kRunning,
  kCompleted,
  kKilled,
  kAborted,    // deadlock victim, not resubmitted
  kSuspended,  // suspended and back in the queue awaiting resume
  kShed,       // dropped by overload protection (Status::Overloaded)
};

const char* RequestStateToString(RequestState s);

/// One end-user request flowing through the workload manager. Wraps the
/// engine-level QuerySpec with arrival metadata, the optimizer's
/// pre-execution view (for admission/scheduling decisions), the workload
/// assignment from characterization, and lifecycle timestamps.
struct Request {
  QuerySpec spec;
  /// Optimizer plan: per-operator true work plus est_* fields carrying the
  /// (noisy) estimates controllers are allowed to see.
  Plan plan;

  double arrival_time = 0.0;
  std::string workload;  // assigned workload name
  BusinessPriority priority = BusinessPriority::kMedium;
  ResourceShares shares;

  RequestState state = RequestState::kArrived;
  OutcomeKind outcome = OutcomeKind::kCompleted;
  double dispatch_time = -1.0;
  double finish_time = -1.0;
  /// Absolute sim-clock deadline by which the request must finish to
  /// meet its SLO. +inf = no deadline. Set at submit time from
  /// QuerySpec::deadline_seconds or derived from the workload's
  /// response-time SLO (overload protection only).
  double deadline = std::numeric_limits<double>::infinity();
  /// When the request last entered the wait queue (for sojourn time).
  double enqueued_time = 0.0;
  int resubmits = 0;
  int suspend_count = 0;
  /// Why admission rejected the request (empty otherwise).
  std::string reject_reason;

  // --- cross-run phase accounting (latency decomposition) -----------------
  /// In-engine phase totals accumulated over every run segment (initial
  /// dispatch, post-suspend resumes, post-kill/deadlock reruns).
  ExecPhaseTotals engine_phases;
  /// Wall time spent in the wait queue across all queue passes (excludes
  /// suspended waits and retry backoff, counted separately below).
  double queue_wait_total_seconds = 0.0;
  /// Wall time parked as a suspended query awaiting re-dispatch.
  double suspended_wait_seconds = 0.0;
  /// Wall time in fault-retry backoff limbo before requeue.
  double retry_backoff_seconds = 0.0;
  /// When the request last entered the wait queue or backoff limbo; the
  /// manager rolls the waiting interval into the buckets above at
  /// dispatch. Unlike `enqueued_time` (CoDel sojourn), this is also reset
  /// on the suspend-requeue path.
  double wait_segment_start = 0.0;

  [[nodiscard]] bool terminal() const {
    return state == RequestState::kRejected ||
           state == RequestState::kCompleted ||
           state == RequestState::kKilled ||
           state == RequestState::kAborted || state == RequestState::kShed;
  }

  [[nodiscard]] bool HasDeadline() const {
    return deadline != std::numeric_limits<double>::infinity();
  }
  /// Sim-seconds left before the deadline (negative = already missed;
  /// +inf when no deadline is set).
  double RemainingBudget(double now) const { return deadline - now; }

  /// Arrival-to-finish time (the user-visible response time). Only valid
  /// in terminal states with finish_time set.
  double ResponseTime() const { return finish_time - arrival_time; }
  /// Time spent waiting before the (first) dispatch.
  double QueueWait() const {
    return dispatch_time >= 0.0 ? dispatch_time - arrival_time : 0.0;
  }
  /// The paper's execution-velocity metric: expected standalone execution
  /// time / total time in system, in (0, 1]. Requires terminal state.
  double Velocity(int num_cpus, double io_ops_per_second) const;
};

}  // namespace wlm

#endif  // WLM_CORE_REQUEST_H_
