#ifndef WLM_CORE_INTERFACES_H_
#define WLM_CORE_INTERFACES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/request.h"
#include "core/taxonomy.h"
#include "engine/monitor.h"

namespace wlm {

class WorkloadManager;

/// Workload characterization: maps an arriving request to a defined
/// workload. Implementations: static rule/criteria classifiers and the
/// ML-based dynamic classifier.
class RequestClassifier {
 public:
  virtual ~RequestClassifier() = default;
  /// Returns the workload name for the request (must be a defined
  /// workload; the manager falls back to its default workload otherwise).
  virtual std::string Classify(const Request& request,
                               const WorkloadManager& manager) = 0;
  virtual TechniqueInfo info() const = 0;
};

/// Admission control: can veto a request at arrival (reject) and can hold
/// queued requests back from dispatch (queue-for-later-admission). The
/// feedback-style controllers ([26], [79][80]) update their state from
/// monitor samples.
class AdmissionController {
 public:
  virtual ~AdmissionController() = default;
  /// Arrival-time decision. Return OK to accept into the system,
  /// Status::Rejected(reason) to refuse outright.
  [[nodiscard]] virtual Status OnArrival(const Request& request,
                           const WorkloadManager& manager) {
    (void)request;
    (void)manager;
    return Status::OK();
  }
  /// Dispatch-time gate: false holds the request in the wait queue.
  [[nodiscard]] virtual bool AllowDispatch(const Request& request,
                             const WorkloadManager& manager) {
    (void)request;
    (void)manager;
    return true;
  }
  /// Periodic hook at each monitor sample.
  virtual void OnSample(const SystemIndicators& indicators,
                        WorkloadManager& manager) {
    (void)indicators;
    (void)manager;
  }
  virtual TechniqueInfo info() const = 0;
};

/// Scheduling: decides the dispatch order of queued requests and (for MPL
/// managers) how many may enter the engine.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// Orders the given queued requests by dispatch preference (front first).
  /// The manager dispatches from the front while gates allow.
  virtual std::vector<QueryId> Order(const std::vector<const Request*>& queued,
                                     const WorkloadManager& manager) = 0;
  /// Upper bound on engine concurrency this round; the manager dispatches
  /// at most (limit - running) new requests. Return <= 0 for "no limit".
  virtual int ConcurrencyLimit(const WorkloadManager& manager) {
    (void)manager;
    return 0;
  }
  virtual void OnSample(const SystemIndicators& indicators,
                        WorkloadManager& manager) {
    (void)indicators;
    (void)manager;
  }
  virtual TechniqueInfo info() const = 0;
};

/// Execution control: inspects running queries at each monitor sample and
/// acts through the manager (kill, throttle, reprioritize, suspend...).
class ExecutionController {
 public:
  virtual ~ExecutionController() = default;
  virtual void OnSample(const SystemIndicators& indicators,
                        WorkloadManager& manager) = 0;
  virtual TechniqueInfo info() const = 0;
};

}  // namespace wlm

#endif  // WLM_CORE_INTERFACES_H_
