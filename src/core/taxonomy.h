#ifndef WLM_CORE_TAXONOMY_H_
#define WLM_CORE_TAXONOMY_H_

#include <string>
#include <vector>

namespace wlm {

/// The four top-level classes of the paper's taxonomy (Figure 1).
enum class TechniqueClass {
  kWorkloadCharacterization,
  kAdmissionControl,
  kScheduling,
  kExecutionControl,
};

/// The subclasses of Figure 1. Throttling and suspend-and-resume are the
/// two kinds of "request suspension"; the registry renders that extra
/// level in the tree.
enum class TechniqueSubclass {
  kStaticCharacterization,
  kDynamicCharacterization,
  kThresholdBasedAdmission,
  kPredictionBasedAdmission,
  kQueueManagement,
  kQueryRestructuring,
  kReprioritization,
  kCancellation,
  kThrottling,       // request suspension / throttling
  kSuspendResume,    // request suspension / suspend-and-resume
};

const char* TechniqueClassName(TechniqueClass c);
const char* TechniqueSubclassName(TechniqueSubclass s);
TechniqueClass SubclassParent(TechniqueSubclass s);

/// Descriptor of one concrete technique implementation. Every controller
/// in this library carries one, so systems built from controllers can be
/// classified automatically — which is how the Table 4 / Table 5
/// classifications are *regenerated* rather than transcribed.
struct TechniqueInfo {
  std::string name;
  TechniqueClass technique_class = TechniqueClass::kAdmissionControl;
  TechniqueSubclass subclass = TechniqueSubclass::kThresholdBasedAdmission;
  std::string description;
  /// Literature / product source, e.g. "Moenkeberg & Weikum [56]".
  std::string source;
};

/// Registry of implemented techniques, organized by the taxonomy. Always
/// instantiated per caller (benches build their own); there is
/// deliberately no process-wide instance, so multi-shard clusters never
/// share mutable state through this layer.
class TaxonomyRegistry {
 public:
  TaxonomyRegistry() = default;

  /// Registers a technique; duplicate names are ignored (first wins).
  void Register(const TechniqueInfo& info);
  const std::vector<TechniqueInfo>& techniques() const { return techniques_; }
  std::vector<TechniqueInfo> InClass(TechniqueClass c) const;
  std::vector<TechniqueInfo> InSubclass(TechniqueSubclass s) const;
  const TechniqueInfo* Find(const std::string& name) const;

  /// Renders the Figure 1 tree with registered techniques as leaves.
  std::string RenderTree() const;

 private:
  std::vector<TechniqueInfo> techniques_;
};

}  // namespace wlm

#endif  // WLM_CORE_TAXONOMY_H_
