#include "core/workload_manager.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <limits>

namespace wlm {

WorkloadManager::WorkloadManager(Simulation* sim, DatabaseEngine* engine,
                                 Monitor* monitor, WlmConfig config)
    : sim_(sim), engine_(engine), monitor_(monitor), config_(config) {
  telemetry_ = std::make_unique<Telemetry>(sim_, monitor_, &event_log_,
                                           config_.telemetry);
  if (config_.overload.enabled) {
    overload_ = std::make_unique<OverloadController>(config_.overload);
    overload_->set_transition_listener(
        [this](OverloadController::TransitionKind kind,
               const std::string& workload, int level,
               const std::string& detail) {
          OnOverloadTransition(kind, workload, level, detail);
        });
  }
  WorkloadDefinition fallback;
  fallback.name = config_.default_workload;
  DefineWorkload(std::move(fallback));
  monitor_->AddSampleListener(
      [this](const SystemIndicators& ind) { OnSample(ind); });
}

WorkloadManager::~WorkloadManager() = default;

void WorkloadManager::DefineWorkload(WorkloadDefinition def) {
  telemetry_->WatchSlos(def.name, def.slos);
  workloads_[def.name] = std::move(def);
}

const WorkloadDefinition* WorkloadManager::workload(
    const std::string& name) const {
  auto it = workloads_.find(name);
  return it == workloads_.end() ? nullptr : &it->second;
}

void WorkloadManager::set_classifier(
    std::unique_ptr<RequestClassifier> classifier) {
  classifier_ = std::move(classifier);
}

void WorkloadManager::AddAdmissionController(
    std::unique_ptr<AdmissionController> ac) {
  admission_.push_back(std::move(ac));
}

void WorkloadManager::set_scheduler(std::unique_ptr<Scheduler> scheduler) {
  scheduler_ = std::move(scheduler);
}

void WorkloadManager::AddExecutionController(
    std::unique_ptr<ExecutionController> ec) {
  execution_.push_back(std::move(ec));
}

std::vector<TechniqueInfo> WorkloadManager::EmployedTechniques() const {
  std::vector<TechniqueInfo> out;
  if (classifier_) out.push_back(classifier_->info());
  for (const auto& ac : admission_) out.push_back(ac->info());
  if (scheduler_) out.push_back(scheduler_->info());
  for (const auto& ec : execution_) out.push_back(ec->info());
  return out;
}

void WorkloadManager::RegisterTechniques(TaxonomyRegistry* registry) const {
  for (const TechniqueInfo& info : EmployedTechniques()) {
    registry->Register(info);
  }
}

Status WorkloadManager::Submit(QuerySpec spec) {
  Plan plan = engine_->optimizer().BuildPlan(spec);
  return SubmitWithPlan(std::move(spec), std::move(plan));
}

Status WorkloadManager::SubmitWithPlan(QuerySpec spec, Plan plan) {
  if (requests_.count(spec.id) > 0) {
    return Status::AlreadyExists("request id already submitted");
  }
  if (IsSyntheticQueryId(spec.id)) {
    return Status::InvalidArgument(
        "query id collides with the reserved synthetic-track block");
  }
  auto request = std::make_unique<Request>();
  request->spec = std::move(spec);
  request->plan = std::move(plan);
  request->arrival_time = sim_->Now();

  // 1. Identification (workload characterization).
  std::string workload_name = config_.default_workload;
  if (classifier_) {
    workload_name = classifier_->Classify(*request, *this);
    if (workloads_.count(workload_name) == 0) {
      workload_name = config_.default_workload;
    }
  }
  request->workload = workload_name;
  const WorkloadDefinition& def = workloads_.at(workload_name);
  request->priority = def.priority;
  request->shares = def.EffectiveShares();
  request->deadline = DeriveDeadline(*request);

  WorkloadCounters& counters = counters_[workload_name];
  ++counters.submitted;

  Request* raw = request.get();
  requests_[raw->spec.id] = std::move(request);
  submission_order_.push_back(raw->spec.id);
  LogEvent(WlmEventType::kSubmitted, *raw);
  telemetry_->OnSubmit(raw->spec.id, raw->workload, raw->spec.kind,
                       raw->spec.journey);

  // 2. Admission control at arrival.
  for (const auto& ac : admission_) {
    Status decision = ac->OnArrival(*raw, *this);
    if (!decision.ok()) {
      raw->state = RequestState::kRejected;
      raw->finish_time = sim_->Now();
      raw->reject_reason = decision.message();
      ++counters.rejected;
      LogEvent(WlmEventType::kRejected, *raw, decision.message());
      telemetry_->OnRejected(raw->spec.id, raw->workload, ac->info().name,
                             decision.message());
      RecordPhaseSamples(*raw);
      for (const auto& fn : completion_listeners_) fn(*raw);
      return Status::Rejected(decision.message());
    }
  }

  // 2b. Overload protection: queue capacity, brownout shed level, and
  // the workload's circuit breaker all gate the arrival before it may
  // consume a queue slot.
  if (overload_) {
    std::string shed_reason = overload_->EvaluateArrival(
        raw->workload, static_cast<int>(raw->priority), sim_->Now(),
        static_cast<int>(queue_.size()));
    if (!shed_reason.empty()) {
      ShedRequest(raw, shed_reason);
      return Status::Overloaded(shed_reason);
    }
  }

  // 3. Enter the wait queue; scheduling decides when it runs.
  raw->state = RequestState::kQueued;
  raw->enqueued_time = sim_->Now();
  raw->wait_segment_start = sim_->Now();
  queue_.push_back(raw->spec.id);
  telemetry_->OnAdmitted(raw->spec.id, raw->workload);
  TryDispatch();
  return Status::OK();
}

double WorkloadManager::DeriveDeadline(const Request& request) const {
  if (request.spec.deadline_seconds > 0.0) {
    return request.arrival_time + request.spec.deadline_seconds;
  }
  if (!overload_ || config_.overload.deadline_slack <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  const WorkloadDefinition* def = workload(request.workload);
  if (def != nullptr) {
    for (const ServiceLevelObjective& slo : def->slos) {
      if (slo.metric == ServiceLevelObjective::Metric::kAvgResponseTime ||
          slo.metric ==
              ServiceLevelObjective::Metric::kPercentileResponseTime) {
        return request.arrival_time +
               slo.target * config_.overload.deadline_slack;
      }
    }
  }
  return std::numeric_limits<double>::infinity();
}

void WorkloadManager::ShedRequest(Request* request,
                                  const std::string& reason) {
  resumable_.erase(request->spec.id);
  RollWaitSegment(request, sim_->Now());
  request->state = RequestState::kShed;
  request->finish_time = sim_->Now();
  request->reject_reason = reason;
  ++counters_[request->workload].shed;
  RecordPhaseSamples(*request);
  if (overload_) overload_->CountShed();
  LogEvent(WlmEventType::kShed, *request, reason);
  telemetry_->OnShed(request->spec.id, request->workload, reason);
  for (const auto& fn : completion_listeners_) fn(*request);
}

void WorkloadManager::RollWaitSegment(Request* request, double now) {
  // Only queued and suspended requests have an open wait segment;
  // arrival-time sheds/rejects never started one.
  if (request->state != RequestState::kQueued &&
      request->state != RequestState::kSuspended) {
    return;
  }
  double waited = std::max(0.0, now - request->wait_segment_start);
  if (request->state == RequestState::kSuspended) {
    request->suspended_wait_seconds += waited;
  } else {
    request->queue_wait_total_seconds += waited;
  }
  request->wait_segment_start = now;
}

void WorkloadManager::RecordPhaseSamples(const Request& request) {
  WorkloadCounters& counters = counters_[request.workload];
  const ExecPhaseTotals& engine = request.engine_phases;
  // Every terminal request samples every phase key (zeros included) so
  // the per-workload distributions stay comparable across phases.
  const std::pair<const char*, double> samples[] = {
      {"queue", request.queue_wait_total_seconds},
      {"lock_wait", engine.lock_wait_seconds},
      {"cpu_run", engine.cpu_run_seconds},
      {"io_stall", engine.io_stall_seconds},
      {"memory_stall", engine.memory_stall_seconds},
      {"throttled", engine.throttled_seconds},
      {"suspend_flush", engine.suspend_flush_seconds},
      {"suspended_wait", request.suspended_wait_seconds},
      {"retry_backoff", request.retry_backoff_seconds},
  };
  for (const auto& [name, seconds] : samples) {
    counters.phase_seconds[name].Add(seconds);
  }
}

void WorkloadManager::RunQueueShedding() {
  if (!overload_) return;
  const double now = sim_->Now();
  // Deadline-unreachable shedding: a queued request whose estimated
  // execution no longer fits before its deadline is dead weight — shed
  // it now instead of burning engine capacity on a guaranteed miss.
  if (config_.overload.deadline_shedding) {
    for (size_t i = 0; i < queue_.size();) {
      Request* request = requests_.at(queue_[i]).get();
      if (request->HasDeadline() &&
          now + request->plan.est_elapsed_seconds > request->deadline) {
        queue_.erase(queue_.begin() +
                     static_cast<std::ptrdiff_t>(i));
        ShedRequest(request, "deadline");
        continue;
      }
      ++i;
    }
  }
  // CoDel sojourn discipline on the head-of-line (oldest) request.
  if (config_.overload.shedding) {
    bool lifo = queue_lifo_;
    while (!queue_.empty()) {
      Request* head = requests_.at(queue_.front()).get();
      CodelQueuePolicy::Decision decision = overload_->ObserveQueue(
          now, now - head->enqueued_time, static_cast<int>(queue_.size()));
      lifo = decision.lifo;
      if (!decision.shed) break;
      queue_.erase(queue_.begin());
      ShedRequest(head, "codel");
    }
    if (queue_.empty()) lifo = overload_->lifo();
    if (lifo != queue_lifo_) {
      queue_lifo_ = lifo;
      telemetry_->OnQueueDiscipline(lifo);
    }
  }
}

void WorkloadManager::TryDispatch() {
  if (in_try_dispatch_) return;  // re-entrancy guard (finish callbacks)
  in_try_dispatch_ = true;
  RunQueueShedding();
  while (true) {
    if (queue_.empty()) break;

    std::vector<const Request*> queued;
    queued.reserve(queue_.size());
    for (QueryId id : queue_) queued.push_back(requests_.at(id).get());

    std::vector<QueryId> order;
    if (queue_lifo_) {
      // Sustained-overload discipline: serve newest first — the freshest
      // request is the only one whose deadline is still reachable, while
      // a stale FIFO backlog would miss every SLO it drains into.
      order = queue_;
      std::sort(order.begin(), order.end(), [this](QueryId a, QueryId b) {
        const Request* ra = requests_.at(a).get();
        const Request* rb = requests_.at(b).get();
        if (ra->enqueued_time != rb->enqueued_time) {
          return ra->enqueued_time > rb->enqueued_time;
        }
        return a > b;
      });
    } else if (scheduler_) {
      order = scheduler_->Order(queued, *this);
    } else {
      order.reserve(queue_.size());
      for (QueryId id : queue_) order.push_back(id);
    }

    int allowed = static_cast<int>(queue_.size());
    if (scheduler_) {
      int limit = scheduler_->ConcurrencyLimit(*this);
      if (limit > 0) {
        // Graceful degradation sheds MPL while a fault window is active:
        // the shrunken engine thrashes at the healthy concurrency level.
        if (degraded()) {
          limit = std::max(
              1, static_cast<int>(std::floor(
                     limit * config_.resilience.degraded_mpl_factor)));
        }
        allowed = limit - static_cast<int>(running_.size());
      }
    }

    int dispatched = 0;
    for (QueryId id : order) {
      if (dispatched >= allowed) break;
      auto queue_it = std::find(queue_.begin(), queue_.end(), id);
      if (queue_it == queue_.end()) continue;  // scheduler returned junk
      Request* request = requests_.at(id).get();
      bool gated = false;
      for (const auto& ac : admission_) {
        if (!ac->AllowDispatch(*request, *this)) {
          telemetry_->OnDispatchGated(id, request->workload,
                                      ac->info().name);
          gated = true;
          break;
        }
      }
      if (gated) continue;
      queue_.erase(queue_it);
      DispatchRequest(request);
      ++dispatched;
    }
    if (dispatched == 0) break;  // nothing else can go this round
  }
  in_try_dispatch_ = false;
}

void WorkloadManager::DispatchRequest(Request* request) {
  QueryId id = request->spec.id;
  RollWaitSegment(request, sim_->Now());
  if (request->dispatch_time < 0.0) {
    request->dispatch_time = sim_->Now();
    counters_[request->workload].queue_waits.Add(sim_->Now() -
                                                 request->arrival_time);
  }
  request->state = RequestState::kRunning;
  running_.insert(id);

  ExecutionContext ctx;
  ctx.tag = request->workload;
  ctx.shares = request->shares;
  ctx.on_finish = [this](const QueryOutcome& outcome) { OnFinish(outcome); };

  Status status;
  auto resume_it = resumable_.find(id);
  if (resume_it != resumable_.end()) {
    SuspendedQuery bundle = std::move(resume_it->second);
    resumable_.erase(resume_it);
    LogEvent(WlmEventType::kResumed, *request,
             SuspendStrategyToString(bundle.strategy));
    telemetry_->OnDispatch(id, request->workload, /*resumed=*/true);
    status = engine_->Resume(bundle, std::move(ctx));
  } else {
    LogEvent(WlmEventType::kDispatched, *request);
    telemetry_->OnDispatch(id, request->workload, /*resumed=*/false);
    status =
        engine_->DispatchWithPlan(request->spec, request->plan, std::move(ctx));
  }
  // Dispatch can only fail on duplicate ids, which Submit prevents.
  assert(status.ok());
  (void)status;

  // Degradation extends to requests dispatched mid-fault-window: the MPL
  // shed already gates how many run; low-priority ones also run slowed.
  const ResilienceOptions& res = config_.resilience;
  if (degraded() && res.degraded_throttle_duty < 1.0 &&
      static_cast<int>(request->priority) <=
          static_cast<int>(res.degraded_throttle_max_priority)) {
    if (ThrottleRequest(id, res.degraded_throttle_duty).ok()) {
      degraded_throttled_.insert(id);
    }
  }
}

void WorkloadManager::LogEvent(WlmEventType type, const Request& request,
                               std::string detail) {
  WlmEvent event;
  event.time = sim_->Now();
  event.type = type;
  event.query = request.spec.id;
  event.workload = request.workload;
  event.detail = std::move(detail);
  event_log_.Append(std::move(event));
}

void WorkloadManager::Requeue(Request* request) {
  request->state = RequestState::kQueued;
  request->enqueued_time = sim_->Now();
  request->wait_segment_start = sim_->Now();
  queue_.push_back(request->spec.id);
  telemetry_->OnRequeued(request->spec.id, request->workload);
}

void WorkloadManager::FinishTerminal(Request* request, RequestState state,
                                     const QueryOutcome& outcome) {
  request->state = state;
  request->finish_time = outcome.finish_time;
  WorkloadCounters& counters = counters_[request->workload];
  double velocity = request->Velocity(engine_->config().num_cpus,
                                      engine_->config().io_ops_per_second);
  const char* outcome_name = "completed";
  switch (state) {
    case RequestState::kCompleted:
      ++counters.completed;
      LogEvent(WlmEventType::kCompleted, *request);
      monitor_->RecordCompletion(request->workload, request->ResponseTime(),
                                 velocity, OutcomeKind::kCompleted);
      break;
    case RequestState::kKilled:
      ++counters.killed;
      outcome_name = "killed";
      LogEvent(WlmEventType::kKilled, *request);
      monitor_->RecordCompletion(request->workload, request->ResponseTime(),
                                 velocity, OutcomeKind::kKilled);
      break;
    case RequestState::kAborted:
      ++counters.aborted;
      outcome_name = "aborted";
      LogEvent(WlmEventType::kAborted, *request, "deadlock victim");
      monitor_->RecordCompletion(request->workload, request->ResponseTime(),
                                 velocity, OutcomeKind::kAbortedDeadlock);
      break;
    default:
      assert(false && "not a terminal state");
  }
  telemetry_->OnTerminal(request->spec.id, request->workload, outcome_name,
                         request->ResponseTime(), request->QueueWait(),
                         outcome);
  RecordPhaseSamples(*request);
  if (overload_) {
    // Feed the workload's breaker and the brownout window. Shed requests
    // never reach here: counting our own sheds as violations would latch
    // the breaker open (a self-inflicted metastable loop).
    bool violated =
        state != RequestState::kCompleted ||
        (request->HasDeadline() && request->finish_time > request->deadline);
    overload_->RecordOutcome(request->workload, sim_->Now(), violated);
  }
  for (const auto& fn : completion_listeners_) fn(*request);
}

void WorkloadManager::AddCompletionListener(
    std::function<void(const Request&)> fn) {
  completion_listeners_.push_back(std::move(fn));
}

void WorkloadManager::OnFinish(const QueryOutcome& outcome) {
  auto it = requests_.find(outcome.id);
  if (it == requests_.end()) return;  // not ours (engine used directly)
  Request* request = it->second.get();
  running_.erase(outcome.id);
  degraded_throttled_.erase(outcome.id);
  // Fold the segment's in-engine phase decomposition into the request's
  // cross-run totals before the outcome-specific handling below.
  request->engine_phases.Accumulate(outcome.phases);
  telemetry_->OnRunSegment(outcome.id, request->workload, outcome);
  WorkloadCounters& counters = counters_[request->workload];

  switch (outcome.kind) {
    case OutcomeKind::kCompleted:
      FinishTerminal(request, RequestState::kCompleted, outcome);
      break;
    case OutcomeKind::kKilled: {
      bool fault_abort = fault_aborted_.erase(outcome.id) > 0;
      bool resubmit = resubmit_on_kill_.erase(outcome.id) > 0;
      if (fault_abort && config_.resilience.enabled &&
          request->resubmits < config_.resilience.max_retries) {
        double delay = RetryBackoffDelay(*request);
        std::string deny_reason;
        if (FaultRetryAllowed(*request, delay, &deny_reason)) {
          ScheduleFaultRetry(request, delay);
        } else {
          ++counters.retries_denied;
          LogEvent(WlmEventType::kRetryDenied, *request, deny_reason);
          telemetry_->OnRetryDenied(outcome.id, request->workload,
                                    deny_reason);
          FinishTerminal(request, RequestState::kKilled, outcome);
        }
      } else if (resubmit && request->resubmits < config_.max_resubmits) {
        ++request->resubmits;
        ++counters.resubmitted;
        LogEvent(WlmEventType::kResubmitted, *request, "after kill");
        Requeue(request);
      } else {
        FinishTerminal(request, RequestState::kKilled, outcome);
      }
      break;
    }
    case OutcomeKind::kAbortedDeadlock:
      if (config_.resubmit_deadlock_victims &&
          request->resubmits < config_.max_resubmits) {
        ++request->resubmits;
        ++counters.resubmitted;
        LogEvent(WlmEventType::kResubmitted, *request, "after deadlock");
        Requeue(request);
      } else {
        FinishTerminal(request, RequestState::kAborted, outcome);
      }
      break;
    case OutcomeKind::kSuspended: {
      auto bundle = engine_->TakeSuspended(outcome.id);
      assert(bundle.ok());
      resumable_[outcome.id] = std::move(bundle).value();
      ++request->suspend_count;
      ++counters.suspended;
      request->state = RequestState::kSuspended;
      request->wait_segment_start = sim_->Now();
      LogEvent(WlmEventType::kSuspended, *request);
      telemetry_->OnSuspended(outcome.id, request->workload);
      queue_.push_back(outcome.id);
      break;
    }
  }
  TryDispatch();
}

void WorkloadManager::OnSample(const SystemIndicators& indicators) {
  if (overload_) {
    overload_->OnSample(sim_->Now(), static_cast<int>(queue_.size()));
  }
  for (const auto& ac : admission_) ac->OnSample(indicators, *this);
  if (scheduler_) scheduler_->OnSample(indicators, *this);
  for (const auto& ec : execution_) ec->OnSample(indicators, *this);
  if (telemetry_->enabled()) {
    telemetry_->OnMonitorSample(indicators, queue_.size(), running_.size());
    for (const auto& [name, def] : workloads_) {
      telemetry_->SetWorkloadOccupancy(name, QueuedInWorkload(name),
                                       RunningInWorkload(name));
    }
  }
  TryDispatch();
}

const Request* WorkloadManager::Find(QueryId id) const {
  auto it = requests_.find(id);
  return it == requests_.end() ? nullptr : it->second.get();
}

std::vector<const Request*> WorkloadManager::Queued() const {
  std::vector<const Request*> out;
  out.reserve(queue_.size());
  for (QueryId id : queue_) out.push_back(requests_.at(id).get());
  return out;
}

std::vector<const Request*> WorkloadManager::Running() const {
  std::vector<QueryId> ids(running_.begin(), running_.end());
  std::sort(ids.begin(), ids.end());
  std::vector<const Request*> out;
  out.reserve(ids.size());
  for (QueryId id : ids) out.push_back(requests_.at(id).get());
  return out;
}

int WorkloadManager::RunningInWorkload(const std::string& name) const {
  int count = 0;
  for (QueryId id : running_) {
    if (requests_.at(id)->workload == name) ++count;
  }
  return count;
}

int WorkloadManager::QueuedInWorkload(const std::string& name) const {
  int count = 0;
  for (QueryId id : queue_) {
    if (requests_.at(id)->workload == name) ++count;
  }
  return count;
}

const WorkloadCounters& WorkloadManager::counters(
    const std::string& workload) const {
  return counters_[workload];
}

std::vector<const Request*> WorkloadManager::AllRequests() const {
  std::vector<const Request*> out;
  out.reserve(submission_order_.size());
  for (QueryId id : submission_order_) {
    out.push_back(requests_.at(id).get());
  }
  return out;
}

std::vector<WorkloadManager::DrainedQuery> WorkloadManager::CrashDrain(
    const std::string& reason) {
  std::vector<DrainedQuery> drained;
  // Shed the whole wait queue before killing anything: the kill pass's
  // finish callbacks re-enter TryDispatch, which must find an empty queue
  // rather than promote doomed requests into the freed slots.
  std::vector<QueryId> waiting;
  waiting.swap(queue_);
  for (QueryId id : waiting) {
    Request* request = requests_.at(id).get();
    drained.push_back({request->spec, request->workload});
    ShedRequest(request, reason);
  }
  std::vector<QueryId> running(running_.begin(), running_.end());
  std::sort(running.begin(), running.end());
  for (QueryId id : running) {
    Request* request = requests_.at(id).get();
    drained.push_back({request->spec, request->workload});
    (void)KillRequest(id, /*resubmit=*/false);
  }
  return drained;
}

Status WorkloadManager::KillRequest(QueryId id, bool resubmit) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return Status::NotFound("unknown request");
  Request* request = it->second.get();
  // A queued (or suspended) victim never reached the engine, so the
  // engine can't kill it; retire it here instead: close the open wait
  // segment and drive the same kKilled terminal bookkeeping the engine's
  // finish callback would have produced for a running victim.
  if (request->state == RequestState::kQueued ||
      request->state == RequestState::kSuspended) {
    auto queued = std::find(queue_.begin(), queue_.end(), id);
    if (queued != queue_.end()) queue_.erase(queued);
    resumable_.erase(id);
    RollWaitSegment(request, sim_->Now());
    if (resubmit && request->resubmits < config_.max_resubmits) {
      ++request->resubmits;
      ++counters_[request->workload].resubmitted;
      LogEvent(WlmEventType::kResubmitted, *request, "after kill");
      Requeue(request);
    } else {
      QueryOutcome outcome;
      outcome.id = id;
      outcome.kind = OutcomeKind::kKilled;
      outcome.dispatch_time = sim_->Now();
      outcome.finish_time = sim_->Now();
      FinishTerminal(request, RequestState::kKilled, outcome);
    }
    return Status::OK();
  }
  if (resubmit) resubmit_on_kill_.insert(id);
  Status status = engine_->Kill(id);  // OnFinish fires synchronously
  if (!status.ok()) resubmit_on_kill_.erase(id);
  return status;
}

Status WorkloadManager::ThrottleRequest(QueryId id, double duty) {
  Status status = engine_->SetDuty(id, duty);
  if (status.ok()) {
    auto it = requests_.find(id);
    if (it != requests_.end()) {
      LogEvent(WlmEventType::kThrottled, *it->second,
               "duty=" + std::to_string(duty));
      telemetry_->OnThrottle(id, it->second->workload, duty);
    }
  }
  return status;
}

Status WorkloadManager::PauseRequest(QueryId id, double seconds) {
  Status status = engine_->Pause(id, seconds);
  if (status.ok()) {
    auto it = requests_.find(id);
    if (it != requests_.end()) {
      LogEvent(WlmEventType::kPaused, *it->second,
               std::to_string(seconds) + "s");
      telemetry_->OnPause(id, it->second->workload, seconds);
    }
  }
  return status;
}

Status WorkloadManager::SetRequestShares(QueryId id,
                                         const ResourceShares& shares) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return Status::NotFound("unknown request");
  it->second->shares = shares;
  if (running_.count(id) > 0) return engine_->SetShares(id, shares);
  return Status::OK();
}

Status WorkloadManager::SetRequestPriority(QueryId id,
                                           BusinessPriority priority) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return Status::NotFound("unknown request");
  it->second->priority = priority;
  LogEvent(WlmEventType::kReprioritized, *it->second,
           BusinessPriorityToString(priority));
  telemetry_->OnReprioritize(id, it->second->workload,
                             BusinessPriorityToString(priority));
  return SetRequestShares(id, SharesForPriority(priority));
}

Status WorkloadManager::SuspendRequest(QueryId id, SuspendStrategy strategy) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return Status::NotFound("unknown request");
  Status status = engine_->Suspend(id, strategy);
  if (status.ok()) {
    telemetry_->OnSuspendStart(id, it->second->workload,
                               SuspendStrategyToString(strategy));
  }
  return status;
}

void WorkloadManager::SetWorkloadShares(const std::string& workload,
                                        const ResourceShares& shares) {
  auto it = workloads_.find(workload);
  if (it != workloads_.end()) it->second.shares = shares;
  for (QueryId id : running_) {
    Request* request = requests_.at(id).get();
    if (request->workload == workload) {
      request->shares = shares;
      // Ids in running_ are live in the engine; a failed update would only
      // mean the query finished this instant, which dispatch re-covers.
      (void)engine_->SetShares(id, shares);
    }
  }
  // Queued requests pick the new shares up at dispatch.
  for (QueryId id : queue_) {
    Request* request = requests_.at(id).get();
    if (request->workload == workload) request->shares = shares;
  }
}

void WorkloadManager::LogFaultEvent(WlmEventType type, const std::string& kind,
                                    std::string detail) {
  WlmEvent event;
  event.time = sim_->Now();
  event.type = type;
  event.query = SyntheticTrackId(SyntheticTrack::kFaults);
  event.workload = SyntheticTrackName(SyntheticTrack::kFaults);
  if (detail.empty()) {
    event.detail = kind;
  } else {
    event.detail = kind + " " + std::move(detail);
  }
  event_log_.Append(std::move(event));
}

void WorkloadManager::NotifyFaultBegin(const std::string& kind,
                                       const std::string& detail) {
  ++active_faults_;
  LogFaultEvent(WlmEventType::kFaultInjected, kind, detail);
  telemetry_->OnFaultBegin(kind, detail);
  if (config_.resilience.enabled && active_faults_ == 1) EnterDegraded();
}

void WorkloadManager::NotifyFaultEnd(const std::string& kind,
                                     double started_at) {
  if (active_faults_ > 0) --active_faults_;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "window=%.3fs", sim_->Now() - started_at);
  LogFaultEvent(WlmEventType::kFaultRecovered, kind, buf);
  telemetry_->OnFaultEnd(kind, started_at);
  if (config_.resilience.enabled && active_faults_ == 0) ExitDegraded();
}

Status WorkloadManager::AbortRequestByFault(QueryId id,
                                            const std::string& reason) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return Status::NotFound("unknown request");
  if (running_.count(id) == 0) {
    return Status::FailedPrecondition("request not running");
  }
  fault_aborted_.insert(id);
  telemetry_->OnFaultAbort(id, it->second->workload, reason);
  Status status = engine_->Kill(id);  // OnFinish fires synchronously
  if (!status.ok()) fault_aborted_.erase(id);
  return status;
}

double WorkloadManager::RetryBackoffDelay(const Request& request) const {
  return config_.resilience.retry_backoff_seconds *
         std::pow(config_.resilience.retry_backoff_multiplier,
                  request.resubmits);
}

bool WorkloadManager::FaultRetryAllowed(const Request& request, double delay,
                                        std::string* reason) {
  // Deadline-aware retry: if even an immediate-best-case rerun (backoff
  // plus the optimizer's elapsed estimate) lands past the deadline, the
  // retry can only burn capacity on a guaranteed SLO miss.
  if (config_.resilience.deadline_aware_retries && request.HasDeadline() &&
      sim_->Now() + delay + request.plan.est_elapsed_seconds >
          request.deadline) {
    *reason = "deadline";
    return false;
  }
  if (overload_ && !overload_->AllowRetry(request.workload, sim_->Now())) {
    *reason = "budget";
    return false;
  }
  return true;
}

void WorkloadManager::ScheduleFaultRetry(Request* request, double delay) {
  ++request->resubmits;
  ++counters_[request->workload].resubmitted;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "fault retry backoff=%.3fs", delay);
  LogEvent(WlmEventType::kResubmitted, *request, buf);
  telemetry_->OnFaultRetry(request->spec.id, request->workload, delay);
  // Backoff limbo: queued state but not yet in the wait queue, so the
  // scheduler cannot dispatch it before the backoff elapses. The whole
  // delay is backoff time by construction (the requeue fires exactly
  // `delay` seconds from now).
  request->retry_backoff_seconds += delay;
  request->state = RequestState::kQueued;
  QueryId id = request->spec.id;
  sim_->Schedule(delay, [this, id] {
    auto it = requests_.find(id);
    if (it == requests_.end()) return;
    Request* r = it->second.get();
    if (r->state != RequestState::kQueued) return;
    if (std::find(queue_.begin(), queue_.end(), id) != queue_.end()) return;
    Requeue(r);
    TryDispatch();
  });
}

void WorkloadManager::EnterDegraded() {
  telemetry_->SetDegraded(true);
  const ResilienceOptions& res = config_.resilience;
  if (res.degraded_throttle_duty >= 1.0) return;
  for (const Request* request : Running()) {
    if (static_cast<int>(request->priority) >
        static_cast<int>(res.degraded_throttle_max_priority)) {
      continue;
    }
    if (ThrottleRequest(request->spec.id, res.degraded_throttle_duty).ok()) {
      degraded_throttled_.insert(request->spec.id);
    }
  }
}

void WorkloadManager::OnOverloadTransition(
    OverloadController::TransitionKind kind, const std::string& workload,
    int level, const std::string& detail) {
  const double now = sim_->Now();
  WlmEvent event;
  event.time = now;
  event.query = SyntheticTrackId(SyntheticTrack::kOverload);
  event.workload =
      workload.empty() ? SyntheticTrackName(SyntheticTrack::kOverload)
                       : workload;
  switch (kind) {
    case OverloadController::TransitionKind::kBreakerTripped: {
      event.type = WlmEventType::kBreakerTripped;
      event.detail = detail;
      event_log_.Append(std::move(event));
      breaker_opened_at_[workload] = now;
      telemetry_->OnBreakerTransition(workload, level, "open", -1.0, detail);
      break;
    }
    case OverloadController::TransitionKind::kBreakerHalfOpen: {
      event.type = WlmEventType::kBreakerHalfOpen;
      event.detail = detail;
      event_log_.Append(std::move(event));
      double opened_at = -1.0;
      auto it = breaker_opened_at_.find(workload);
      if (it != breaker_opened_at_.end()) {
        opened_at = it->second;
        breaker_opened_at_.erase(it);
      }
      telemetry_->OnBreakerTransition(workload, level, "half_open", opened_at,
                                      detail);
      break;
    }
    case OverloadController::TransitionKind::kBreakerClosed: {
      event.type = WlmEventType::kBreakerClosed;
      event.detail = detail;
      event_log_.Append(std::move(event));
      telemetry_->OnBreakerTransition(workload, level, "closed", -1.0,
                                      detail);
      break;
    }
    case OverloadController::TransitionKind::kBrownoutStepped: {
      event.type = WlmEventType::kBrownoutStepped;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "level=%d %s", level, detail.c_str());
      event.detail = buf;
      event_log_.Append(std::move(event));
      if (level > 0 && brownout_entered_at_ < 0.0) {
        brownout_entered_at_ = now;
      }
      double entered_at = level == 0 ? brownout_entered_at_ : -1.0;
      if (level == 0) brownout_entered_at_ = -1.0;
      telemetry_->OnBrownoutStep(level, entered_at, detail);
      break;
    }
  }
}

void WorkloadManager::ExitDegraded() {
  telemetry_->SetDegraded(false);
  std::vector<QueryId> throttled(degraded_throttled_.begin(),
                                 degraded_throttled_.end());
  std::sort(throttled.begin(), throttled.end());
  degraded_throttled_.clear();
  for (QueryId id : throttled) {
    if (running_.count(id) > 0) (void)ThrottleRequest(id, 1.0);
  }
  // The MPL shed lifted with the last fault window; fill freed slots.
  TryDispatch();
}

}  // namespace wlm
