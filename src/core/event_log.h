#ifndef WLM_CORE_EVENT_LOG_H_
#define WLM_CORE_EVENT_LOG_H_

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "engine/types.h"

namespace wlm {

/// Control-plane event kinds recorded by the workload manager. This is
/// the library's analogue of the commercial products' event monitors
/// (DB2's activity and threshold-violation monitors, SQL Server's
/// Resource Governor events, Teradata's exception logging).
enum class WlmEventType {
  kSubmitted,
  kRejected,       // admission denied
  kDispatched,     // sent to the execution engine
  kCompleted,
  kKilled,
  kAborted,        // deadlock victim, not resubmitted
  kResubmitted,    // requeued after a kill/abort
  kSuspended,      // suspension finished, request back in queue
  kResumed,        // dispatched again from a suspended state
  kThrottled,      // duty-cycle change
  kPaused,         // interrupt-throttle pause
  kReprioritized,  // business priority change
};

const char* WlmEventTypeToString(WlmEventType type);

/// One control-plane event.
struct WlmEvent {
  double time = 0.0;
  WlmEventType type = WlmEventType::kSubmitted;
  QueryId query = 0;
  std::string workload;
  std::string detail;
};

/// Bounded, append-only event log. Oldest events are evicted past
/// `max_events` (the total count keeps counting).
class EventLog {
 public:
  explicit EventLog(size_t max_events = 1 << 16);

  void Append(WlmEvent event);
  void Clear();

  size_t size() const { return events_.size(); }
  int64_t total_appended() const { return total_; }
  const std::deque<WlmEvent>& events() const { return events_; }

  /// Events of one type, oldest first.
  std::vector<WlmEvent> OfType(WlmEventType type) const;
  /// Full history of one request, oldest first.
  std::vector<WlmEvent> ForQuery(QueryId id) const;
  /// Events with time in [begin, end).
  std::vector<WlmEvent> InWindow(double begin, double end) const;
  /// Count of events of `type` (within the retained window).
  int64_t CountOf(WlmEventType type) const;

 private:
  size_t max_events_;
  int64_t total_ = 0;
  std::deque<WlmEvent> events_;
};

}  // namespace wlm

#endif  // WLM_CORE_EVENT_LOG_H_
