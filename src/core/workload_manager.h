#ifndef WLM_CORE_WORKLOAD_MANAGER_H_
#define WLM_CORE_WORKLOAD_MANAGER_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "telemetry/event_log.h"
#include "core/interfaces.h"
#include "core/request.h"
#include "core/taxonomy.h"
#include "core/workload.h"
#include "engine/engine.h"
#include "engine/monitor.h"
#include "faults/fault_sink.h"
#include "overload/overload_controller.h"
#include "sim/simulation.h"
#include "telemetry/telemetry.h"

namespace wlm {

/// Resilience policies the manager applies while faults disturb the
/// engine (driven by `wlm::FaultInjector`, but any caller of
/// NotifyFaultBegin/End and AbortRequestByFault engages them).
struct ResilienceOptions {
  /// Master switch; everything below is inert when false.
  bool enabled = false;

  // Bounded retry with exponential backoff for fault-aborted requests.
  /// Max automatic retries per request (counted with other resubmits).
  int max_retries = 3;
  /// Delay before the first retry, seconds.
  double retry_backoff_seconds = 0.25;
  /// Backoff growth per successive retry of one request.
  double retry_backoff_multiplier = 2.0;
  /// Deadline-aware retries: never schedule a retry whose earliest
  /// possible completion (backoff + estimated elapsed) is already past
  /// the request's deadline — it would only burn capacity.
  bool deadline_aware_retries = true;

  // Graceful degradation while at least one fault window is active.
  /// Scheduler concurrency limits are scaled by this factor (floor 1)
  /// while degraded — shedding MPL so the shrunken engine is not
  /// over-admitted.
  double degraded_mpl_factor = 0.5;
  /// Duty imposed on running requests at or below
  /// `degraded_throttle_max_priority` while degraded; 1.0 disables.
  double degraded_throttle_duty = 1.0;
  BusinessPriority degraded_throttle_max_priority = BusinessPriority::kLow;
};

struct WlmConfig {
  /// Workload used when no classifier matches.
  std::string default_workload = "default";
  /// Requeue deadlock victims automatically (kill-and-resubmit policy).
  bool resubmit_deadlock_victims = true;
  /// Max automatic resubmissions (deadlock or kill-and-resubmit) before a
  /// request is abandoned.
  int max_resubmits = 3;
  /// Observability layer (per-query span traces, labeled metrics, SLO
  /// watchdog). Purely passive; disabling changes no control decision.
  TelemetryOptions telemetry;
  /// Fault-window resilience policies (retry/backoff, degradation).
  ResilienceOptions resilience;
  /// Overload protection: queue capacities + CoDel shedding, retry
  /// budgets, circuit breakers, brownout. Off by default.
  OverloadOptions overload;
};

/// The workload-management framework: wires characterization, admission
/// control, scheduling and execution control around the database engine,
/// exactly following the paper's three-step process — understand
/// objectives (WorkloadDefinition + SLOs), identify requests
/// (RequestClassifier), impose controls (controller chains).
///
/// Requests enter via Submit(); terminal statistics land in the Monitor
/// (per-workload tag) and per-workload counters here.
class WorkloadManager : public FaultSink {
 public:
  WorkloadManager(Simulation* sim, DatabaseEngine* engine, Monitor* monitor,
                  WlmConfig config = WlmConfig());
  ~WorkloadManager();
  WorkloadManager(const WorkloadManager&) = delete;
  WorkloadManager& operator=(const WorkloadManager&) = delete;

  // --- setup ---------------------------------------------------------------
  void DefineWorkload(WorkloadDefinition def);
  const WorkloadDefinition* workload(const std::string& name) const;
  const std::map<std::string, WorkloadDefinition>& workloads() const {
    return workloads_;
  }
  void set_classifier(std::unique_ptr<RequestClassifier> classifier);
  void AddAdmissionController(std::unique_ptr<AdmissionController> ac);
  void set_scheduler(std::unique_ptr<Scheduler> scheduler);
  void AddExecutionController(std::unique_ptr<ExecutionController> ec);

  /// Techniques employed by this configuration — the automatic
  /// Table 4 / Table 5 classification.
  std::vector<TechniqueInfo> EmployedTechniques() const;
  void RegisterTechniques(TaxonomyRegistry* registry) const;

  // --- runtime ---------------------------------------------------------------
  /// Runs the full pipeline for one arriving request: classify, admission,
  /// enqueue, and attempt dispatch. Returns Rejected if admission refused
  /// the request (the request is still recorded, state kRejected).
  [[nodiscard]] Status Submit(QuerySpec spec);
  /// As Submit, but executes the caller-provided plan instead of the
  /// optimizer's (query restructuring dispatches sub-plans this way).
  [[nodiscard]] Status SubmitWithPlan(QuerySpec spec, Plan plan);

  /// Observer fired whenever a request reaches a terminal state
  /// (completed / killed / aborted / rejected).
  void AddCompletionListener(std::function<void(const Request&)> fn);

  /// Re-evaluates the queue against the scheduler and dispatch gates.
  /// Called automatically on submit, completions and monitor samples.
  void TryDispatch();

  // --- state access (controllers read through these) -----------------------
  Simulation* sim() const { return sim_; }
  DatabaseEngine* engine() const { return engine_; }
  Monitor* monitor() const { return monitor_; }
  const WlmConfig& config() const { return config_; }

  const Request* Find(QueryId id) const;
  std::vector<const Request*> Queued() const;
  /// Currently running requests, ordered by query id.
  std::vector<const Request*> Running() const;
  size_t queue_depth() const { return queue_.size(); }
  size_t running_count() const { return running_.size(); }
  int RunningInWorkload(const std::string& name) const;
  int QueuedInWorkload(const std::string& name) const;
  const WorkloadCounters& counters(const std::string& workload) const;
  /// Every request ever submitted, in submission order.
  std::vector<const Request*> AllRequests() const;

  /// Control-plane event history (the library's "event monitors"):
  /// submissions, rejections, dispatches, kills, suspensions, throttle
  /// changes, reprioritizations...
  const EventLog& event_log() const { return event_log_; }

  /// Observability facade: span tracer, metrics registry, SLO watchdog.
  Telemetry& telemetry() { return *telemetry_; }
  const Telemetry& telemetry() const { return *telemetry_; }

  /// Overload-protection facade; nullptr unless config.overload.enabled.
  OverloadController* overload() { return overload_.get(); }
  const OverloadController* overload() const { return overload_.get(); }
  /// True while the wait queue serves newest-first (CoDel overload mode).
  [[nodiscard]] bool queue_lifo() const { return queue_lifo_; }

  // --- actions (execution controllers act through these) -------------------
  /// Kills a running request; with `resubmit` it re-enters the queue
  /// (kill-and-resubmit [39]) unless the resubmit budget is exhausted.
  [[nodiscard]] Status KillRequest(QueryId id, bool resubmit);
  /// Constant throttle (duty in (0, 1]); 1.0 removes the throttle.
  [[nodiscard]] Status ThrottleRequest(QueryId id, double duty);
  /// Interrupt throttle: one pause of `seconds`.
  [[nodiscard]] Status PauseRequest(QueryId id, double seconds);
  [[nodiscard]] Status SetRequestShares(QueryId id, const ResourceShares& shares);
  /// Reprioritization: changes business priority and the engine weights.
  [[nodiscard]] Status SetRequestPriority(QueryId id, BusinessPriority priority);
  /// Suspends a running request; once the engine finishes flushing state
  /// the request re-enters the wait queue and will resume when dispatched.
  [[nodiscard]] Status SuspendRequest(QueryId id, SuspendStrategy strategy);
  /// Changes a workload's shares, applying to running and future requests.
  void SetWorkloadShares(const std::string& workload,
                         const ResourceShares& shares);

  // --- fault plumbing (FaultSink; the FaultInjector drives these) ----------
  /// A fault window opened: logs kFaultInjected, feeds telemetry, and —
  /// with resilience enabled — engages graceful degradation (MPL shed,
  /// low-priority throttling) until the matching NotifyFaultEnd.
  void NotifyFaultBegin(const std::string& kind,
                        const std::string& detail) override;
  /// The window that began at `started_at` closed; reverts degradation
  /// once no windows remain active.
  void NotifyFaultEnd(const std::string& kind, double started_at) override;
  int active_fault_count() const { return active_faults_; }
  /// True while resilience is enabled and any fault window is active.
  [[nodiscard]] bool degraded() const {
    return config_.resilience.enabled && active_faults_ > 0;
  }
  /// Spontaneous fault abort of a running request. With resilience
  /// enabled the victim retries after exponential backoff (bounded by
  /// `max_retries`); otherwise it terminates as killed.
  [[nodiscard]] Status AbortRequestByFault(QueryId id,
                                           const std::string& reason) override;

  /// One query orphaned by a shard crash: enough to resubmit it for a
  /// second life on a surviving shard.
  struct DrainedQuery {
    QuerySpec spec;
    std::string workload;
  };

  /// The process died: every waiting request is shed and every running
  /// request killed, each reaching its terminal state (and conserving its
  /// phase decomposition) at the instant of death. Returns the orphans in
  /// deterministic order — queue order first, then running requests by
  /// id — so a cluster dispatcher can grant them second lives elsewhere.
  /// Fault-retry backoff limbo is deliberately untouched: those retries
  /// are already charged and re-enter the (restarted) shard's queue on
  /// their own schedule, like a durable retry queue surviving the crash.
  std::vector<DrainedQuery> CrashDrain(const std::string& reason);

 private:
  void OnSample(const SystemIndicators& indicators);
  void OnFinish(const QueryOutcome& outcome);
  void DispatchRequest(Request* request);
  void LogEvent(WlmEventType type, const Request& request,
                std::string detail = "");
  void Requeue(Request* request);
  void FinishTerminal(Request* request, RequestState state,
                      const QueryOutcome& outcome);
  void LogFaultEvent(WlmEventType type, const std::string& kind,
                     std::string detail);
  /// Schedules the backoff-delayed requeue of a fault-aborted request.
  void ScheduleFaultRetry(Request* request, double delay);
  void EnterDegraded();
  void ExitDegraded();
  /// Absolute deadline for a new request: spec.deadline_seconds first,
  /// else (overload protection only) the workload's response-time SLO
  /// times overload.deadline_slack; +inf when neither applies.
  double DeriveDeadline(const Request& request) const;
  /// Backoff delay the resilience policy would use for the next retry.
  double RetryBackoffDelay(const Request& request) const;
  /// Deadline + retry-budget gate ahead of ScheduleFaultRetry. On denial
  /// fills `reason` ("deadline" or "budget").
  [[nodiscard]] bool FaultRetryAllowed(const Request& request, double delay,
                                       std::string* reason);
  /// Marks a request shed (terminal), with counters/log/telemetry.
  void ShedRequest(Request* request, const std::string& reason);
  /// Rolls the open wait segment (queue / suspended / backoff limbo)
  /// into the request's wait buckets at `now`.
  void RollWaitSegment(Request* request, double now);
  /// Samples every phase bucket of a terminal request into its
  /// workload's per-phase percentile distributions.
  void RecordPhaseSamples(const Request& request);
  /// Deadline-unreachable + CoDel shedding over the wait queue; flips
  /// the FIFO/LIFO discipline flag. Runs at the top of TryDispatch.
  void RunQueueShedding();
  void OnOverloadTransition(OverloadController::TransitionKind kind,
                            const std::string& workload, int level,
                            const std::string& detail);

  Simulation* sim_;
  DatabaseEngine* engine_;
  Monitor* monitor_;
  WlmConfig config_;

  std::map<std::string, WorkloadDefinition> workloads_;
  std::unique_ptr<RequestClassifier> classifier_;
  std::vector<std::unique_ptr<AdmissionController>> admission_;
  std::unique_ptr<Scheduler> scheduler_;
  std::vector<std::unique_ptr<ExecutionController>> execution_;

  std::unordered_map<QueryId, std::unique_ptr<Request>> requests_;
  std::vector<QueryId> submission_order_;
  // Waiting requests in arrival order. Bounded by
  // OverloadOptions::codel.queue_capacity when overload protection is
  // enabled; the seed's unbounded behavior is kept when it is off.
  // wlm-lint: allow(Q1) capacity enforced by OverloadController when enabled
  std::vector<QueryId> queue_;
  std::unordered_set<QueryId> running_;
  std::unordered_map<QueryId, SuspendedQuery> resumable_;
  std::unordered_set<QueryId> resubmit_on_kill_;
  std::unordered_set<QueryId> fault_aborted_;
  std::unordered_set<QueryId> degraded_throttled_;
  int active_faults_ = 0;
  std::vector<std::function<void(const Request&)>> completion_listeners_;
  mutable std::map<std::string, WorkloadCounters> counters_;
  EventLog event_log_;
  std::unique_ptr<Telemetry> telemetry_;  // after event_log_: sinks into it
  std::unique_ptr<OverloadController> overload_;  // null when disabled
  bool queue_lifo_ = false;
  /// Sim time each workload's breaker last opened (for the open-window
  /// span recorded when it leaves the open state).
  std::map<std::string, double> breaker_opened_at_;
  double brownout_entered_at_ = -1.0;
  bool in_try_dispatch_ = false;
};

}  // namespace wlm

#endif  // WLM_CORE_WORKLOAD_MANAGER_H_
