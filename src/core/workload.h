#ifndef WLM_CORE_WORKLOAD_H_
#define WLM_CORE_WORKLOAD_H_

#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/request.h"
#include "telemetry/slo.h"

namespace wlm {

/// A defined workload (the "workload object" of commercial facilities,
/// Section 2.2): a name for a class of requests plus the business
/// priority, SLOs and resource access rights its SLA confers. Which
/// requests map to it is the characterization module's job.
struct WorkloadDefinition {
  std::string name;
  BusinessPriority priority = BusinessPriority::kMedium;
  std::vector<ServiceLevelObjective> slos;
  /// Engine weights applied to this workload's requests; defaults from the
  /// priority when left at zero.
  ResourceShares shares{0.0, 0.0};

  ResourceShares EffectiveShares() const {
    if (shares.cpu_weight > 0.0 && shares.io_weight > 0.0) return shares;
    return SharesForPriority(priority);
  }
};

/// Workload-manager-level counters per workload (monitor holds the
/// response-time/velocity distributions; these add the lifecycle view).
struct WorkloadCounters {
  int64_t submitted = 0;
  int64_t rejected = 0;
  int64_t completed = 0;
  int64_t killed = 0;
  int64_t aborted = 0;
  int64_t resubmitted = 0;
  int64_t suspended = 0;
  /// Dropped by overload protection — tracked apart from rejected (an
  /// admission policy decision) and killed/aborted (fault outcomes).
  int64_t shed = 0;
  /// Retries denied by the retry budget or deadline-aware retry check.
  int64_t retries_denied = 0;
  Percentiles queue_waits;
  /// Per-phase wall-time distributions across this workload's terminal
  /// requests, keyed by phase name ("queue", "lock_wait", "cpu_run",
  /// "io_stall", "memory_stall", "throttled", "suspend_flush",
  /// "suspended_wait", "retry_backoff"). Every terminal request
  /// contributes a sample to every key, so distributions are comparable;
  /// std::map keeps report iteration deterministic.
  std::map<std::string, Percentiles> phase_seconds;
};

/// Canonical phase-name order for reports and rollups.
inline const std::vector<std::string>& WorkloadPhaseNames() {
  static const std::vector<std::string> kNames = {
      "queue",       "lock_wait",      "cpu_run",
      "io_stall",    "memory_stall",   "throttled",
      "suspend_flush", "suspended_wait", "retry_backoff"};
  return kNames;
}

}  // namespace wlm

#endif  // WLM_CORE_WORKLOAD_H_
