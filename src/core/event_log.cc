#include "core/event_log.h"

namespace wlm {

const char* WlmEventTypeToString(WlmEventType type) {
  switch (type) {
    case WlmEventType::kSubmitted:
      return "submitted";
    case WlmEventType::kRejected:
      return "rejected";
    case WlmEventType::kDispatched:
      return "dispatched";
    case WlmEventType::kCompleted:
      return "completed";
    case WlmEventType::kKilled:
      return "killed";
    case WlmEventType::kAborted:
      return "aborted";
    case WlmEventType::kResubmitted:
      return "resubmitted";
    case WlmEventType::kSuspended:
      return "suspended";
    case WlmEventType::kResumed:
      return "resumed";
    case WlmEventType::kThrottled:
      return "throttled";
    case WlmEventType::kPaused:
      return "paused";
    case WlmEventType::kReprioritized:
      return "reprioritized";
  }
  return "?";
}

EventLog::EventLog(size_t max_events) : max_events_(max_events) {}

void EventLog::Append(WlmEvent event) {
  ++total_;
  events_.push_back(std::move(event));
  while (events_.size() > max_events_) events_.pop_front();
}

void EventLog::Clear() { events_.clear(); }

std::vector<WlmEvent> EventLog::OfType(WlmEventType type) const {
  std::vector<WlmEvent> out;
  for (const WlmEvent& e : events_) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

std::vector<WlmEvent> EventLog::ForQuery(QueryId id) const {
  std::vector<WlmEvent> out;
  for (const WlmEvent& e : events_) {
    if (e.query == id) out.push_back(e);
  }
  return out;
}

std::vector<WlmEvent> EventLog::InWindow(double begin, double end) const {
  std::vector<WlmEvent> out;
  for (const WlmEvent& e : events_) {
    if (e.time >= begin && e.time < end) out.push_back(e);
  }
  return out;
}

int64_t EventLog::CountOf(WlmEventType type) const {
  int64_t count = 0;
  for (const WlmEvent& e : events_) {
    if (e.type == type) ++count;
  }
  return count;
}

}  // namespace wlm
