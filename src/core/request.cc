#include "core/request.h"

#include <algorithm>

namespace wlm {

const char* BusinessPriorityToString(BusinessPriority p) {
  switch (p) {
    case BusinessPriority::kBackground:
      return "background";
    case BusinessPriority::kLow:
      return "low";
    case BusinessPriority::kMedium:
      return "medium";
    case BusinessPriority::kHigh:
      return "high";
    case BusinessPriority::kCritical:
      return "critical";
  }
  return "?";
}

ResourceShares SharesForPriority(BusinessPriority p) {
  switch (p) {
    case BusinessPriority::kBackground:
      return {0.5, 0.5};
    case BusinessPriority::kLow:
      return {1.0, 1.0};
    case BusinessPriority::kMedium:
      return {2.0, 2.0};
    case BusinessPriority::kHigh:
      return {4.0, 4.0};
    case BusinessPriority::kCritical:
      return {8.0, 8.0};
  }
  return {1.0, 1.0};
}

const char* RequestStateToString(RequestState s) {
  switch (s) {
    case RequestState::kArrived:
      return "arrived";
    case RequestState::kQueued:
      return "queued";
    case RequestState::kRejected:
      return "rejected";
    case RequestState::kRunning:
      return "running";
    case RequestState::kCompleted:
      return "completed";
    case RequestState::kKilled:
      return "killed";
    case RequestState::kAborted:
      return "aborted";
    case RequestState::kSuspended:
      return "suspended";
    case RequestState::kShed:
      return "shed";
  }
  return "?";
}

double Request::Velocity(int num_cpus, double io_ops_per_second) const {
  double dop = std::min(spec.dop, num_cpus);
  double expected =
      plan.StandaloneSeconds(static_cast<int>(dop), io_ops_per_second);
  double actual = ResponseTime();
  if (actual <= 0.0) return 1.0;
  return std::clamp(expected / actual, 0.0, 1.0);
}

}  // namespace wlm
