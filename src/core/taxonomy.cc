#include "core/taxonomy.h"

#include <array>
#include <sstream>

namespace wlm {

const char* TechniqueClassName(TechniqueClass c) {
  switch (c) {
    case TechniqueClass::kWorkloadCharacterization:
      return "Workload Characterization";
    case TechniqueClass::kAdmissionControl:
      return "Admission Control";
    case TechniqueClass::kScheduling:
      return "Scheduling";
    case TechniqueClass::kExecutionControl:
      return "Execution Control";
  }
  return "?";
}

const char* TechniqueSubclassName(TechniqueSubclass s) {
  switch (s) {
    case TechniqueSubclass::kStaticCharacterization:
      return "Static Characterization";
    case TechniqueSubclass::kDynamicCharacterization:
      return "Dynamic Characterization";
    case TechniqueSubclass::kThresholdBasedAdmission:
      return "Threshold-based";
    case TechniqueSubclass::kPredictionBasedAdmission:
      return "Prediction-based";
    case TechniqueSubclass::kQueueManagement:
      return "Queue Management";
    case TechniqueSubclass::kQueryRestructuring:
      return "Query Restructuring";
    case TechniqueSubclass::kReprioritization:
      return "Query Reprioritization";
    case TechniqueSubclass::kCancellation:
      return "Query Cancellation";
    case TechniqueSubclass::kThrottling:
      return "Request Suspension / Throttling";
    case TechniqueSubclass::kSuspendResume:
      return "Request Suspension / Suspend-and-Resume";
  }
  return "?";
}

TechniqueClass SubclassParent(TechniqueSubclass s) {
  switch (s) {
    case TechniqueSubclass::kStaticCharacterization:
    case TechniqueSubclass::kDynamicCharacterization:
      return TechniqueClass::kWorkloadCharacterization;
    case TechniqueSubclass::kThresholdBasedAdmission:
    case TechniqueSubclass::kPredictionBasedAdmission:
      return TechniqueClass::kAdmissionControl;
    case TechniqueSubclass::kQueueManagement:
    case TechniqueSubclass::kQueryRestructuring:
      return TechniqueClass::kScheduling;
    case TechniqueSubclass::kReprioritization:
    case TechniqueSubclass::kCancellation:
    case TechniqueSubclass::kThrottling:
    case TechniqueSubclass::kSuspendResume:
      return TechniqueClass::kExecutionControl;
  }
  return TechniqueClass::kExecutionControl;
}

void TaxonomyRegistry::Register(const TechniqueInfo& info) {
  if (Find(info.name) != nullptr) return;
  techniques_.push_back(info);
}

std::vector<TechniqueInfo> TaxonomyRegistry::InClass(TechniqueClass c) const {
  std::vector<TechniqueInfo> out;
  for (const TechniqueInfo& t : techniques_) {
    if (t.technique_class == c) out.push_back(t);
  }
  return out;
}

std::vector<TechniqueInfo> TaxonomyRegistry::InSubclass(
    TechniqueSubclass s) const {
  std::vector<TechniqueInfo> out;
  for (const TechniqueInfo& t : techniques_) {
    if (t.subclass == s) out.push_back(t);
  }
  return out;
}

const TechniqueInfo* TaxonomyRegistry::Find(const std::string& name) const {
  for (const TechniqueInfo& t : techniques_) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

std::string TaxonomyRegistry::RenderTree() const {
  static constexpr std::array<TechniqueClass, 4> kClasses = {
      TechniqueClass::kWorkloadCharacterization,
      TechniqueClass::kAdmissionControl,
      TechniqueClass::kScheduling,
      TechniqueClass::kExecutionControl,
  };
  static constexpr std::array<TechniqueSubclass, 10> kSubclasses = {
      TechniqueSubclass::kStaticCharacterization,
      TechniqueSubclass::kDynamicCharacterization,
      TechniqueSubclass::kThresholdBasedAdmission,
      TechniqueSubclass::kPredictionBasedAdmission,
      TechniqueSubclass::kQueueManagement,
      TechniqueSubclass::kQueryRestructuring,
      TechniqueSubclass::kReprioritization,
      TechniqueSubclass::kCancellation,
      TechniqueSubclass::kThrottling,
      TechniqueSubclass::kSuspendResume,
  };

  std::ostringstream os;
  os << "Workload Management Techniques\n";
  for (TechniqueClass cls : kClasses) {
    os << "+-- " << TechniqueClassName(cls) << "\n";
    for (TechniqueSubclass sub : kSubclasses) {
      if (SubclassParent(sub) != cls) continue;
      os << "|   +-- " << TechniqueSubclassName(sub) << "\n";
      for (const TechniqueInfo& t : InSubclass(sub)) {
        os << "|   |   * " << t.name;
        if (!t.source.empty()) os << "  (" << t.source << ")";
        os << "\n";
      }
    }
  }
  return os.str();
}

}  // namespace wlm
